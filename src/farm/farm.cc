#include "farm/farm.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <system_error>
#include <thread>

#include <unistd.h>

#include "compress/objfile.hh"
#include "farm/jobspec.hh"
#include "farm/worker.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/subprocess.hh"
#include "support/thread_pool.hh"
#include "timing/timing.hh"
#include "workloads/workloads.hh"

namespace codecomp::farm {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** One workload program built once and shared by all its jobs. */
struct BuiltProgram
{
    Program program;
    uint64_t hash = 0; //!< PipelineCache::programHash(program)
};

std::string
hexDigest(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** One per-job record; @p full adds wall time, attempts, failure
 *  attribution, and pipeline stats. */
void
jobRecordJson(JsonWriter &json, const FarmJobResult &result, bool full)
{
    json.beginObject();
    json.member("id", result.id);
    json.member("workload", result.workload);
    json.member("scheme", result.scheme);
    json.member("strategy", result.strategy);
    if (!result.ok()) {
        json.member("error", result.error);
    } else {
        json.member("total_bytes", result.totalBytes);
        json.member("text_bytes", result.textBytes);
        json.member("dict_bytes", result.dictBytes);
        json.member("ratio", result.ratio);
        json.member("far_branch_expansions", result.farBranchExpansions);
        json.member("image_fnv64", hexDigest(result.imageFnv64));
    }
    if (full) {
        json.member("millis", result.millis);
        json.member("attempts", result.attempts);
        if (!result.ok())
            json.member("failure_kind",
                        failureKindName(result.failureKind));
        if (result.ok() && !result.stats.passes.empty()) {
            json.key("pipeline");
            json.raw(result.stats.toJson());
        }
    }
    json.endObject();
}

uint64_t
mix64(uint64_t a, uint64_t b)
{
    ByteSink sink;
    sink.put64(a);
    sink.put64(b);
    return fnv1a64(sink.bytes());
}

/** Effective deadline/retry budget for @p job under @p options. */
uint64_t
effectiveTimeoutMs(const FarmJob &job, const FarmOptions &options)
{
    return job.timeoutMs >= 0 ? static_cast<uint64_t>(job.timeoutMs)
                              : options.jobTimeoutMs;
}

uint32_t
effectiveRetries(const FarmJob &job, const FarmOptions &options)
{
    return job.retries >= 0 ? static_cast<uint32_t>(job.retries)
                            : options.retries;
}

/** First ~200 chars of the worker's captured stderr, for failure
 *  attribution (empty on any read problem). */
std::string
stderrExcerpt(const std::string &path)
{
    Result<std::vector<uint8_t>> bytes = tryReadFile(path);
    if (!bytes.ok() || bytes.value().empty())
        return "";
    std::string text(bytes.value().begin(), bytes.value().end());
    if (text.size() > 200)
        text.resize(200);
    for (char &c : text)
        if (c == '\n')
            c = ' ';
    return text;
}

/**
 * Run one job in a worker subprocess with deadline, retries, and
 * backoff. Scratch files live under @p scratch and are removed per
 * attempt; the final result (success or a classified failure) carries
 * the attempt count and failure kind.
 */
FarmJobResult
runIsolatedJob(const FarmJob &job, size_t index,
               const FarmOptions &options, const std::string &workerBin,
               const std::filesystem::path &scratch,
               compress::PipelineCache::Stats &cacheTotals,
               std::mutex &cacheTotalsMutex)
{
    FarmJobResult result;
    result.id = job.id;
    result.workload = job.workload;
    result.scheme = compress::schemeCliName(job.config.scheme);
    result.strategy = compress::strategyName(job.config.strategy);

    uint64_t timeoutMs = effectiveTimeoutMs(job, options);
    uint32_t maxAttempts = 1 + effectiveRetries(job, options);
    Clock::time_point jobStart = Clock::now();
    std::string specJson = writeJobSpec({job});

    // Preflight: a job the spec format itself rejects (an out-of-range
    // config) is deterministic -- fail it as a SpecError immediately
    // instead of burning worker spawns and retries on it.
    try {
        parseJobSpec(specJson);
    } catch (const std::exception &error) {
        result.error = error.what();
        result.failureKind = FailureKind::SpecError;
        result.millis = millisSince(jobStart);
        return result;
    }

    for (uint32_t attempt = 0; attempt < maxAttempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                backoffMillis(attempt, options.backoffBaseMs,
                              options.backoffCapMs, options.seed,
                              index)));
        result.attempts = attempt + 1;

        std::string stem =
            (scratch / ("job-" + std::to_string(index) + "-" +
                        std::to_string(attempt)))
                .string();
        std::string specPath = stem + ".json";
        std::string outPath = stem + ".bin";
        std::string errPath = stem + ".stderr";
        writeFile(specPath,
                  std::vector<uint8_t>(specJson.begin(), specJson.end()));

        std::vector<std::string> argv = {workerBin, "--worker", specPath,
                                         "--worker-out", outPath};
        if (!options.cacheDir.empty() && options.cache) {
            argv.push_back("--cache-dir");
            argv.push_back(options.cacheDir);
        }
        if (!options.keepImages)
            argv.push_back("--worker-no-images");
        bool injected =
            (options.inject.kind == InjectKind::Crash ||
             options.inject.kind == InjectKind::Hang) &&
            shouldInject(options.inject, index, attempt);
        if (injected) {
            argv.push_back("--worker-inject");
            argv.push_back(options.inject.kind == InjectKind::Crash
                               ? "crash"
                               : "hang");
        }

        SubprocessOptions spawnOptions;
        spawnOptions.timeoutMs = timeoutMs;
        spawnOptions.stderrPath = errPath;
        SubprocessResult spawn = runSubprocess(argv, spawnOptions);

        WorkerResult worker;
        bool resultOk = false;
        if (spawn.outcome == SubprocessResult::Outcome::Exited &&
            spawn.exitCode == 0) {
            Result<std::vector<uint8_t>> bytes = tryReadFile(outPath);
            if (bytes.ok()) {
                Result<WorkerResult> parsed =
                    parseWorkerResult(bytes.value());
                if (parsed.ok()) {
                    worker = parsed.take();
                    resultOk = true;
                }
            }
        }
        FailureKind kind = classifyWorkerOutcome(spawn, resultOk, worker);

        std::string excerpt = stderrExcerpt(errPath);
        std::error_code ec;
        std::filesystem::remove(specPath, ec);
        std::filesystem::remove(outPath, ec);
        std::filesystem::remove(errPath, ec);

        if (kind == FailureKind::None) {
            uint32_t attempts = result.attempts;
            result = std::move(worker.result);
            result.attempts = attempts;
            result.failureKind = FailureKind::None;
            result.error.clear();
            {
                std::lock_guard<std::mutex> lock(cacheTotalsMutex);
                const compress::PipelineCache::Stats &cs =
                    worker.cacheStats;
                cacheTotals.enumHits += cs.enumHits;
                cacheTotals.enumMisses += cs.enumMisses;
                cacheTotals.selectHits += cs.selectHits;
                cacheTotals.selectMisses += cs.selectMisses;
                cacheTotals.evictions += cs.evictions;
                cacheTotals.persistHits += cs.persistHits;
                cacheTotals.persistMisses += cs.persistMisses;
                cacheTotals.persistStores += cs.persistStores;
                cacheTotals.persistCorrupt += cs.persistCorrupt;
            }
            break;
        }

        result.failureKind = kind;
        if (resultOk && !worker.result.error.empty()) {
            result.error = worker.result.error;
        } else {
            result.error = std::string("worker ") +
                           subprocessOutcomeName(spawn.outcome);
            if (spawn.outcome == SubprocessResult::Outcome::Exited)
                result.error +=
                    " (exit " + std::to_string(spawn.exitCode) + ")";
            else if (spawn.outcome == SubprocessResult::Outcome::Signaled)
                result.error +=
                    " (signal " + std::to_string(spawn.signal) + ")";
            else if (spawn.outcome == SubprocessResult::Outcome::TimedOut)
                result.error += " (deadline " +
                                std::to_string(timeoutMs) + " ms)";
            if (!excerpt.empty())
                result.error += ": " + excerpt;
        }
        // A SpecError is deterministic -- retrying replays the same
        // failure -- so only environment-shaped kinds burn retries.
        if (kind == FailureKind::SpecError)
            break;
    }
    result.millis = millisSince(jobStart);
    return result;
}

} // namespace

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return "none";
      case FailureKind::Crash:
        return "crash";
      case FailureKind::Timeout:
        return "timeout";
      case FailureKind::LoadError:
        return "load_error";
      case FailureKind::MachineCheck:
        return "machine_check";
      case FailureKind::SpecError:
        return "spec_error";
    }
    return "?";
}

bool
shouldInject(const FaultPlan &plan, size_t jobIndex, uint32_t attempt)
{
    if (plan.kind == InjectKind::None ||
        plan.kind == InjectKind::CorruptCache || plan.rateDen == 0)
        return false;
    // Job-level decision only: the injected subset is a pure function
    // of (seed, jobIndex), so reports reproduce across runs, pool
    // widths, and attempt counts.
    Rng rng(mix64(plan.seed, static_cast<uint64_t>(jobIndex)));
    bool jobInjected = rng.chance(plan.rateNum, plan.rateDen);
    if (plan.firstAttemptOnly)
        return jobInjected && attempt == 0;
    return jobInjected;
}

uint64_t
backoffMillis(uint32_t attempt, uint64_t baseMs, uint64_t capMs,
              uint64_t seed, size_t jobIndex)
{
    CC_ASSERT(attempt >= 1, "backoff is a between-attempts delay");
    uint64_t exp = attempt - 1 >= 20 ? 20 : attempt - 1; // clamp shift
    uint64_t delay = baseMs << exp;
    if (capMs && delay > capMs)
        delay = capMs;
    // Jitter in [50%, 150%], seeded so two workers retrying the same
    // moment don't stampede in sync -- but reproducibly.
    Rng rng(mix64(mix64(seed, static_cast<uint64_t>(jobIndex)), attempt));
    uint64_t percent = 50 + rng.below(101);
    return delay * percent / 100;
}

size_t
FarmReport::failures() const
{
    return static_cast<size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FarmJobResult &r) { return !r.ok(); }));
}

size_t
FarmReport::failuresOfKind(FailureKind kind) const
{
    return static_cast<size_t>(std::count_if(
        results.begin(), results.end(), [kind](const FarmJobResult &r) {
            return !r.ok() && r.failureKind == kind;
        }));
}

std::vector<std::pair<std::string, double>>
FarmReport::passTotals() const
{
    std::vector<std::pair<std::string, double>> totals;
    for (const FarmJobResult &result : results) {
        for (const compress::PassStats &pass : result.stats.passes) {
            auto it = std::find_if(totals.begin(), totals.end(),
                                   [&pass](const auto &entry) {
                                       return entry.first == pass.name;
                                   });
            if (it == totals.end())
                totals.emplace_back(pass.name, pass.millis);
            else
                it->second += pass.millis;
        }
    }
    return totals;
}

std::string
FarmReport::resultsJson() const
{
    JsonWriter json;
    json.beginArray();
    for (const FarmJobResult &result : results)
        jobRecordJson(json, result, /*full=*/false);
    json.endArray();
    return json.str();
}

std::string
FarmReport::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.member("jobs", static_cast<uint64_t>(results.size()));
    json.member("failures", static_cast<uint64_t>(failures()));
    json.key("failure_kinds");
    json.beginObject();
    for (FailureKind kind :
         {FailureKind::Crash, FailureKind::Timeout, FailureKind::LoadError,
          FailureKind::MachineCheck, FailureKind::SpecError}) {
        size_t count = failuresOfKind(kind);
        if (count)
            json.member(failureKindName(kind),
                        static_cast<uint64_t>(count));
    }
    json.endObject();
    json.member("pool_jobs", poolJobs);
    json.member("cache", cacheEnabled);
    json.member("isolate", isolated);
    json.member("build_millis", buildMillis);
    json.member("compress_millis", compressMillis);
    json.member("wall_millis", wallMillis);
    json.member("jobs_per_second",
                compressMillis > 0.0
                    ? 1000.0 * static_cast<double>(results.size()) /
                          compressMillis
                    : 0.0);
    json.key("cache_stats");
    json.beginObject();
    json.member("enum_hits", cacheStats.enumHits);
    json.member("enum_misses", cacheStats.enumMisses);
    json.member("select_hits", cacheStats.selectHits);
    json.member("select_misses", cacheStats.selectMisses);
    json.member("evictions", cacheStats.evictions);
    json.member("persist_hits", cacheStats.persistHits);
    json.member("persist_misses", cacheStats.persistMisses);
    json.member("persist_stores", cacheStats.persistStores);
    json.member("persist_corrupt", cacheStats.persistCorrupt);
    json.endObject();
    json.key("pass_millis");
    json.beginObject();
    for (const auto &[name, millis] : passTotals())
        json.member(name, millis);
    json.endObject();
    json.key("results");
    json.beginArray();
    for (const FarmJobResult &result : results)
        jobRecordJson(json, result, /*full=*/true);
    json.endArray();
    json.endObject();
    return json.str();
}

std::vector<FarmJob>
starterCorpus()
{
    static const compress::StrategyKind strategies[] = {
        compress::StrategyKind::Greedy,
        compress::StrategyKind::IterativeRefit,
    };
    std::vector<FarmJob> jobs;
    for (const std::string &workload : workloads::benchmarkNames()) {
        for (const compress::SchemeCodec *codec : compress::allCodecs()) {
            for (compress::StrategyKind strategy : strategies) {
                FarmJob job;
                job.workload = workload;
                job.config.scheme = codec->id();
                job.config.strategy = strategy;
                job.config.maxEntries = 4680; // the ccompress default
                job.id = workload + "/" + std::string(codec->cliName()) +
                         "/" + compress::strategyName(strategy);
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

FarmJobResult
runFarmJob(const FarmJob &job, const Program &program,
           uint64_t programHash, compress::PipelineCache *cache,
           bool keepImages)
{
    FarmJobResult result;
    result.id = job.id;
    result.workload = job.workload;
    result.scheme = compress::schemeCliName(job.config.scheme);
    result.strategy = compress::strategyName(job.config.strategy);
    Clock::time_point jobStart = Clock::now();
    try {
        // Profile-guided layout without a caller-supplied profile:
        // profile here, where the built program is at hand, so job
        // specs stay declarative (the profile itself is deterministic).
        compress::CompressorConfig config = job.config;
        if (config.layout == compress::LayoutMode::HotCold &&
            config.trafficProfile.empty())
            config.trafficProfile = timing::profileExecutionCounts(program);
        compress::PipelineContext ctx(program, config);
        if (cache) {
            ctx.cache = cache;
            ctx.programHash = programHash;
        }
        result.stats = compress::Pipeline::standard().run(ctx);
        const compress::CompressedImage &image = ctx.image;
        result.totalBytes = image.totalBytes();
        result.textBytes = image.compressedTextBytes();
        result.dictBytes = image.dictionaryBytes();
        result.ratio = image.compressionRatio();
        result.farBranchExpansions = image.farBranchExpansions;
        std::vector<uint8_t> bytes = saveImage(image);
        result.imageFnv64 = fnv1a64(bytes);
        if (keepImages)
            result.imageBytes = std::move(bytes);
    } catch (const LoadFailure &failure) {
        result.error = failure.what();
        result.failureKind = FailureKind::LoadError;
    } catch (const std::exception &error) {
        result.error = error.what();
        result.failureKind = FailureKind::SpecError;
    }
    result.millis = millisSince(jobStart);
    return result;
}

FarmReport
runFarm(const std::vector<FarmJob> &jobs, const FarmOptions &options)
{
    Clock::time_point runStart = Clock::now();
    FarmReport report;
    report.cacheEnabled = options.cache;
    report.isolated = options.isolate;
    report.poolJobs = globalJobs();

    // Validate the queue before any work starts: a typo'd workload
    // name should fail the run immediately, not 40 jobs in.
    const std::vector<std::string> &names = workloads::benchmarkNames();
    for (const FarmJob &job : jobs) {
        if (std::find(names.begin(), names.end(), job.workload) ==
            names.end())
            CC_FATAL("farm job '", job.id, "': unknown workload '",
                     job.workload, "'");
        if (job.scale < 1)
            CC_FATAL("farm job '", job.id, "': scale must be >= 1, got ",
                     job.scale);
    }

    if (options.isolate) {
        // Process isolation: every job runs in a forked worker (the
        // ccfarm binary in --worker mode); the parent builds nothing
        // and touches no job state, so no fault can reach it.
        std::string workerBin = options.workerBinary.empty()
                                    ? selfExecutablePath()
                                    : options.workerBinary;
        if (workerBin.empty())
            CC_FATAL("isolation requires a worker binary (set "
                     "FarmOptions::workerBinary)");
        if (!std::filesystem::exists(workerBin))
            CC_FATAL("worker binary '", workerBin, "' does not exist");

        std::filesystem::path scratch =
            options.scratchDir.empty()
                ? std::filesystem::temp_directory_path()
                : std::filesystem::path(options.scratchDir);
        scratch /= "ccfarm-" + std::to_string(::getpid()) + "-" +
                   hexDigest(mix64(options.seed,
                                   static_cast<uint64_t>(
                                       Clock::now().time_since_epoch()
                                           .count())));
        std::error_code ec;
        std::filesystem::create_directories(scratch, ec);
        if (ec)
            CC_FATAL("cannot create farm scratch directory '",
                     scratch.string(), "': ", ec.message());

        compress::PipelineCache::Stats cacheTotals;
        std::mutex cacheTotalsMutex;
        Clock::time_point compressStart = Clock::now();
        report.results = parallelMap<FarmJobResult>(
            jobs.size(), [&](size_t i) {
                return runIsolatedJob(jobs[i], i, options, workerBin,
                                      scratch, cacheTotals,
                                      cacheTotalsMutex);
            });
        report.compressMillis = millisSince(compressStart);
        report.cacheStats = cacheTotals;
        std::filesystem::remove_all(scratch, ec);
        report.wallMillis = millisSince(runStart);
        return report;
    }

    // Build each distinct (workload, scale) program once, in parallel;
    // its content hash doubles as the cache identity for every job
    // that compresses it.
    std::vector<std::pair<std::string, int>> uniques;
    std::map<std::pair<std::string, int>, size_t> programOf;
    for (const FarmJob &job : jobs) {
        auto key = std::make_pair(job.workload, job.scale);
        if (programOf.emplace(key, uniques.size()).second)
            uniques.push_back(key);
    }
    Clock::time_point buildStart = Clock::now();
    std::vector<BuiltProgram> built = parallelMap<BuiltProgram>(
        uniques.size(), [&uniques](size_t i) {
            BuiltProgram b;
            b.program = workloads::buildBenchmark(uniques[i].first,
                                                  uniques[i].second);
            b.hash = compress::PipelineCache::programHash(b.program);
            return b;
        });
    report.buildMillis = millisSince(buildStart);

    // Shard the queue: one pool task per job, results index-addressed
    // so the report order is the queue order at any pool width. Each
    // job's own parallel enumeration nests and therefore runs inline.
    compress::PipelineCache cache;
    if (options.cacheMaxEntries || options.cacheMaxBytes)
        cache.setCapacity(options.cacheMaxEntries, options.cacheMaxBytes);
    if (!options.cacheDir.empty() && options.cache)
        cache.setDiskStore(options.cacheDir);
    Clock::time_point compressStart = Clock::now();
    report.results = parallelMap<FarmJobResult>(
        jobs.size(), [&](size_t i) {
            const FarmJob &job = jobs[i];
            const BuiltProgram &prog =
                built[programOf.at({job.workload, job.scale})];
            return runFarmJob(job, prog.program, prog.hash,
                              options.cache ? &cache : nullptr,
                              options.keepImages);
        });
    report.compressMillis = millisSince(compressStart);
    report.cacheStats = cache.stats();
    report.wallMillis = millisSince(runStart);
    return report;
}

} // namespace codecomp::farm
