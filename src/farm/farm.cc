#include "farm/farm.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "compress/objfile.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workloads/workloads.hh"

namespace codecomp::farm {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** One workload program built once and shared by all its jobs. */
struct BuiltProgram
{
    Program program;
    uint64_t hash = 0; //!< PipelineCache::programHash(program)
};

std::string
hexDigest(uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** One per-job record; @p full adds wall time and pipeline stats. */
void
jobRecordJson(JsonWriter &json, const FarmJobResult &result, bool full)
{
    json.beginObject();
    json.member("id", result.id);
    json.member("workload", result.workload);
    json.member("scheme", result.scheme);
    json.member("strategy", result.strategy);
    if (!result.ok()) {
        json.member("error", result.error);
    } else {
        json.member("total_bytes", result.totalBytes);
        json.member("text_bytes", result.textBytes);
        json.member("dict_bytes", result.dictBytes);
        json.member("ratio", result.ratio);
        json.member("far_branch_expansions", result.farBranchExpansions);
        json.member("image_fnv64", hexDigest(result.imageFnv64));
    }
    if (full) {
        json.member("millis", result.millis);
        if (result.ok()) {
            json.key("pipeline");
            json.raw(result.stats.toJson());
        }
    }
    json.endObject();
}

} // namespace

size_t
FarmReport::failures() const
{
    return static_cast<size_t>(
        std::count_if(results.begin(), results.end(),
                      [](const FarmJobResult &r) { return !r.ok(); }));
}

std::vector<std::pair<std::string, double>>
FarmReport::passTotals() const
{
    std::vector<std::pair<std::string, double>> totals;
    for (const FarmJobResult &result : results) {
        for (const compress::PassStats &pass : result.stats.passes) {
            auto it = std::find_if(totals.begin(), totals.end(),
                                   [&pass](const auto &entry) {
                                       return entry.first == pass.name;
                                   });
            if (it == totals.end())
                totals.emplace_back(pass.name, pass.millis);
            else
                it->second += pass.millis;
        }
    }
    return totals;
}

std::string
FarmReport::resultsJson() const
{
    JsonWriter json;
    json.beginArray();
    for (const FarmJobResult &result : results)
        jobRecordJson(json, result, /*full=*/false);
    json.endArray();
    return json.str();
}

std::string
FarmReport::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.member("jobs", static_cast<uint64_t>(results.size()));
    json.member("failures", static_cast<uint64_t>(failures()));
    json.member("pool_jobs", poolJobs);
    json.member("cache", cacheEnabled);
    json.member("build_millis", buildMillis);
    json.member("compress_millis", compressMillis);
    json.member("wall_millis", wallMillis);
    json.member("jobs_per_second",
                compressMillis > 0.0
                    ? 1000.0 * static_cast<double>(results.size()) /
                          compressMillis
                    : 0.0);
    json.key("cache_stats");
    json.beginObject();
    json.member("enum_hits", cacheStats.enumHits);
    json.member("enum_misses", cacheStats.enumMisses);
    json.member("select_hits", cacheStats.selectHits);
    json.member("select_misses", cacheStats.selectMisses);
    json.endObject();
    json.key("pass_millis");
    json.beginObject();
    for (const auto &[name, millis] : passTotals())
        json.member(name, millis);
    json.endObject();
    json.key("results");
    json.beginArray();
    for (const FarmJobResult &result : results)
        jobRecordJson(json, result, /*full=*/true);
    json.endArray();
    json.endObject();
    return json.str();
}

std::vector<FarmJob>
starterCorpus()
{
    static const compress::StrategyKind strategies[] = {
        compress::StrategyKind::Greedy,
        compress::StrategyKind::IterativeRefit,
    };
    std::vector<FarmJob> jobs;
    for (const std::string &workload : workloads::benchmarkNames()) {
        for (const compress::SchemeCodec *codec : compress::allCodecs()) {
            for (compress::StrategyKind strategy : strategies) {
                FarmJob job;
                job.workload = workload;
                job.config.scheme = codec->id();
                job.config.strategy = strategy;
                job.config.maxEntries = 4680; // the ccompress default
                job.id = workload + "/" + std::string(codec->cliName()) +
                         "/" + compress::strategyName(strategy);
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

FarmReport
runFarm(const std::vector<FarmJob> &jobs, const FarmOptions &options)
{
    Clock::time_point runStart = Clock::now();
    FarmReport report;
    report.cacheEnabled = options.cache;
    report.poolJobs = globalJobs();

    // Validate the queue before any work starts: a typo'd workload
    // name should fail the run immediately, not 40 jobs in.
    const std::vector<std::string> &names = workloads::benchmarkNames();
    for (const FarmJob &job : jobs) {
        if (std::find(names.begin(), names.end(), job.workload) ==
            names.end())
            CC_FATAL("farm job '", job.id, "': unknown workload '",
                     job.workload, "'");
        if (job.scale < 1)
            CC_FATAL("farm job '", job.id, "': scale must be >= 1, got ",
                     job.scale);
    }

    // Build each distinct (workload, scale) program once, in parallel;
    // its content hash doubles as the cache identity for every job
    // that compresses it.
    std::vector<std::pair<std::string, int>> uniques;
    std::map<std::pair<std::string, int>, size_t> programOf;
    for (const FarmJob &job : jobs) {
        auto key = std::make_pair(job.workload, job.scale);
        if (programOf.emplace(key, uniques.size()).second)
            uniques.push_back(key);
    }
    Clock::time_point buildStart = Clock::now();
    std::vector<BuiltProgram> built = parallelMap<BuiltProgram>(
        uniques.size(), [&uniques](size_t i) {
            BuiltProgram b;
            b.program = workloads::buildBenchmark(uniques[i].first,
                                                  uniques[i].second);
            b.hash = compress::PipelineCache::programHash(b.program);
            return b;
        });
    report.buildMillis = millisSince(buildStart);

    // Shard the queue: one pool task per job, results index-addressed
    // so the report order is the queue order at any pool width. Each
    // job's own parallel enumeration nests and therefore runs inline.
    compress::PipelineCache cache;
    Clock::time_point compressStart = Clock::now();
    report.results = parallelMap<FarmJobResult>(
        jobs.size(), [&](size_t i) {
            const FarmJob &job = jobs[i];
            const BuiltProgram &prog =
                built[programOf.at({job.workload, job.scale})];
            FarmJobResult result;
            result.id = job.id;
            result.workload = job.workload;
            result.scheme = compress::schemeCliName(job.config.scheme);
            result.strategy = compress::strategyName(job.config.strategy);
            Clock::time_point jobStart = Clock::now();
            try {
                compress::PipelineContext ctx(prog.program, job.config);
                if (options.cache) {
                    ctx.cache = &cache;
                    ctx.programHash = prog.hash;
                }
                result.stats = compress::Pipeline::standard().run(ctx);
                const compress::CompressedImage &image = ctx.image;
                result.totalBytes = image.totalBytes();
                result.textBytes = image.compressedTextBytes();
                result.dictBytes = image.dictionaryBytes();
                result.ratio = image.compressionRatio();
                result.farBranchExpansions = image.farBranchExpansions;
                std::vector<uint8_t> bytes = saveImage(image);
                result.imageFnv64 = fnv1a64(bytes);
                if (options.keepImages)
                    result.imageBytes = std::move(bytes);
            } catch (const std::exception &error) {
                result.error = error.what();
            }
            result.millis = millisSince(jobStart);
            return result;
        });
    report.compressMillis = millisSince(compressStart);
    report.cacheStats = cache.stats();
    report.wallMillis = millisSince(runStart);
    return report;
}

} // namespace codecomp::farm
