#include "farm/worker.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "compress/codec.hh"
#include "compress/strategy.hh"
#include "decompress/fault.hh"
#include "support/logging.hh"
#include "workloads/workloads.hh"

namespace codecomp::farm {

namespace {

/**
 * Result-file layout (big-endian, support/serialize.hh):
 *
 *   u32  magic   "CCWR"
 *   u16  version (kWorkerVersion)
 *   blob payload (the serialized WorkerResult; doubles as raw bits)
 *   u64  checksum = fnv1a64(payload)
 */
constexpr uint32_t kWorkerMagic = 0x43435752; // "CCWR"
constexpr uint16_t kWorkerVersion = 1;

uint64_t
doubleBits(double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

void
putStats(ByteSink &sink, const compress::PipelineStats &stats)
{
    sink.putString(stats.strategy);
    sink.putString(stats.scheme);
    sink.put32(stats.selectionRounds);
    sink.put32(static_cast<uint32_t>(stats.passes.size()));
    for (const compress::PassStats &pass : stats.passes) {
        sink.putString(pass.name);
        sink.put64(doubleBits(pass.millis));
        sink.put32(static_cast<uint32_t>(pass.counters.size()));
        for (const auto &[name, value] : pass.counters) {
            sink.putString(name);
            sink.put64(value);
        }
    }
}

compress::PipelineStats
getStats(ByteSource &source)
{
    compress::PipelineStats stats;
    stats.strategy = source.getString();
    stats.scheme = source.getString();
    stats.selectionRounds = source.get32();
    stats.passes.resize(source.get32());
    for (compress::PassStats &pass : stats.passes) {
        pass.name = source.getString();
        pass.millis = bitsDouble(source.get64());
        pass.counters.resize(source.get32());
        for (auto &[name, value] : pass.counters) {
            name = source.getString();
            value = source.get64();
        }
    }
    return stats;
}

} // namespace

std::vector<uint8_t>
serializeWorkerResult(const WorkerResult &worker)
{
    const FarmJobResult &r = worker.result;
    ByteSink payload;
    payload.putString(r.id);
    payload.putString(r.workload);
    payload.putString(r.scheme);
    payload.putString(r.strategy);
    payload.putString(r.error);
    payload.put8(static_cast<uint8_t>(r.failureKind));
    payload.put32(r.attempts);
    payload.put64(r.imageFnv64);
    payload.put64(r.totalBytes);
    payload.put64(r.textBytes);
    payload.put64(r.dictBytes);
    payload.put64(doubleBits(r.ratio));
    payload.put32(r.farBranchExpansions);
    payload.putBlob(r.imageBytes);
    putStats(payload, r.stats);
    payload.put64(doubleBits(r.millis));
    const compress::PipelineCache::Stats &cs = worker.cacheStats;
    for (uint64_t field :
         {cs.enumHits, cs.enumMisses, cs.selectHits, cs.selectMisses,
          cs.evictions, cs.persistHits, cs.persistMisses,
          cs.persistStores, cs.persistCorrupt})
        payload.put64(field);

    ByteSink sink;
    sink.put32(kWorkerMagic);
    sink.put16(kWorkerVersion);
    uint64_t checksum = fnv1a64(payload.bytes());
    sink.putBlob(payload.take());
    sink.put64(checksum);
    return sink.take();
}

Result<WorkerResult>
parseWorkerResult(const std::vector<uint8_t> &bytes)
{
    try {
        ByteSource source(bytes);
        source.setContext("worker result header");
        if (source.get32() != kWorkerMagic)
            return LoadError{LoadStatus::BadMagic, 0,
                             "worker result header",
                             "not a worker result file"};
        if (source.get16() != kWorkerVersion)
            return LoadError{LoadStatus::BadVersion, 4,
                             "worker result header",
                             "unsupported worker result version"};
        std::vector<uint8_t> payload = source.getBlob();
        uint64_t checksum = source.get64();
        if (!source.atEnd())
            return LoadError{LoadStatus::TrailingBytes, source.pos(),
                             "worker result", "trailing bytes"};
        if (fnv1a64(payload) != checksum)
            return LoadError{LoadStatus::BadChecksum, 0,
                             "worker result payload",
                             "payload checksum mismatch"};

        ByteSource body(payload);
        body.setContext("worker result payload");
        WorkerResult worker;
        FarmJobResult &r = worker.result;
        r.id = body.getString();
        r.workload = body.getString();
        r.scheme = body.getString();
        r.strategy = body.getString();
        r.error = body.getString();
        uint8_t kind = body.get8();
        if (kind > static_cast<uint8_t>(FailureKind::SpecError))
            return LoadError{LoadStatus::BadValue, body.pos(),
                             "worker result payload",
                             "failure kind out of range"};
        r.failureKind = static_cast<FailureKind>(kind);
        r.attempts = body.get32();
        r.imageFnv64 = body.get64();
        r.totalBytes = body.get64();
        r.textBytes = body.get64();
        r.dictBytes = body.get64();
        r.ratio = bitsDouble(body.get64());
        r.farBranchExpansions = body.get32();
        r.imageBytes = body.getBlob();
        r.stats = getStats(body);
        r.millis = bitsDouble(body.get64());
        for (uint64_t *field :
             {&worker.cacheStats.enumHits, &worker.cacheStats.enumMisses,
              &worker.cacheStats.selectHits,
              &worker.cacheStats.selectMisses,
              &worker.cacheStats.evictions,
              &worker.cacheStats.persistHits,
              &worker.cacheStats.persistMisses,
              &worker.cacheStats.persistStores,
              &worker.cacheStats.persistCorrupt})
            *field = body.get64();
        if (!body.atEnd())
            return LoadError{LoadStatus::TrailingBytes, body.pos(),
                             "worker result payload", "trailing bytes"};
        return worker;
    } catch (const LoadFailure &failure) {
        return failure.error();
    } catch (const std::exception &error) {
        // bad_alloc from an absurd declared count, etc.
        return LoadError{LoadStatus::BadValue, 0, "worker result",
                         error.what()};
    }
}

WorkerResult
runWorkerJob(const FarmJob &job, const std::string &cacheDir,
             bool keepImages, InjectKind inject)
{
    WorkerResult worker;
    FarmJobResult &result = worker.result;
    result.id = job.id;
    result.workload = job.workload;
    result.scheme = compress::schemeCliName(job.config.scheme);
    result.strategy = compress::strategyName(job.config.strategy);
    try {
        Program program =
            workloads::buildBenchmark(job.workload, job.scale);

        // Deliberate faults for the self-test campaign, placed mid-job
        // (after the expensive build) so a kill interrupts real work.
        if (inject == InjectKind::Crash)
            std::abort();
        if (inject == InjectKind::Hang)
            for (;;)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));

        compress::PipelineCache cache;
        compress::PipelineCache *cachePtr = nullptr;
        if (!cacheDir.empty() && cache.setDiskStore(cacheDir))
            cachePtr = &cache;
        uint64_t hash =
            cachePtr ? compress::PipelineCache::programHash(program) : 0;
        result = runFarmJob(job, program, hash, cachePtr, keepImages);
        worker.cacheStats = cache.stats();
    } catch (const MachineCheckError &error) {
        result.error = error.what();
        result.failureKind = FailureKind::MachineCheck;
    } catch (const PanicError &) {
        throw; // a library bug: let the worker exit 3 (Crash)
    } catch (const LoadFailure &failure) {
        result.error = failure.what();
        result.failureKind = FailureKind::LoadError;
    } catch (const std::exception &error) {
        result.error = error.what();
        result.failureKind = FailureKind::SpecError;
    }
    return worker;
}

FailureKind
classifyWorkerOutcome(const SubprocessResult &spawn, bool resultOk,
                      const WorkerResult &result)
{
    switch (spawn.outcome) {
      case SubprocessResult::Outcome::TimedOut:
        return FailureKind::Timeout;
      case SubprocessResult::Outcome::Signaled:
        return FailureKind::Crash;
      case SubprocessResult::Outcome::SpawnFailed:
        return FailureKind::LoadError;
      case SubprocessResult::Outcome::Exited:
        break;
    }
    switch (spawn.exitCode) {
      case 0:
        if (!resultOk)
            return FailureKind::LoadError;
        if (result.result.error.empty())
            return FailureKind::None;
        // An in-band failure carries its own kind (SpecError for a
        // plain job error, LoadError/MachineCheck if the worker
        // classified it).
        return result.result.failureKind == FailureKind::None
                   ? FailureKind::SpecError
                   : result.result.failureKind;
      case 2:
        return FailureKind::MachineCheck; // tool exit contract
      case 1:
      case 127:
        return FailureKind::LoadError; // load/spawn-level failure
      default:
        return FailureKind::Crash; // panic (3) or an abrupt exit
    }
}

} // namespace codecomp::farm
