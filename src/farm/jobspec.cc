#include "farm/jobspec.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "compress/compressor.hh"
#include "compress/encoding.hh"
#include "compress/strategy.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace codecomp::farm {

namespace {

/**
 * A parsed JSON value. The spec grammar only needs objects, arrays,
 * strings, numbers, and booleans; numbers are kept as doubles and
 * narrowed (with integrality and range checks) at interpretation time.
 */
struct JsonValue
{
    enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[name, value] : object)
            if (name == key)
                return &value;
        return nullptr;
    }
};

const char *
kindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null:
        return "null";
      case JsonValue::Kind::Bool:
        return "boolean";
      case JsonValue::Kind::Number:
        return "number";
      case JsonValue::Kind::String:
        return "string";
      case JsonValue::Kind::Array:
        return "array";
      case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

/** Recursive-descent parser over the spec text; every syntax error is
 *  a catchable fatal naming the byte offset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after the document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        CC_FATAL("job spec: ", what, " at byte ", pos_);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == '-' || (c >= '0' && c <= '9'))
            return parseNumber();
        return parseKeyword();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        skipSpace();
        if (consume('}'))
            return value;
        for (;;) {
            skipSpace();
            JsonValue key = parseString();
            skipSpace();
            expect(':');
            value.object.emplace_back(std::move(key.string), parseValue());
            skipSpace();
            if (consume(','))
                continue;
            expect('}');
            return value;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        skipSpace();
        if (consume(']'))
            return value;
        for (;;) {
            value.array.push_back(parseValue());
            skipSpace();
            if (consume(','))
                continue;
            expect(']');
            return value;
        }
    }

    JsonValue
    parseString()
    {
        if (peek() != '"')
            fail("expected a string");
        ++pos_;
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return value;
            if (c != '\\') {
                value.string += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                value.string += esc;
                break;
              case 'n':
                value.string += '\n';
                break;
              case 'r':
                value.string += '\r';
                break;
              case 't':
                value.string += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported in job specs");
                value.string += static_cast<char>(code);
                break;
              }
              default:
                fail(std::string("unknown escape '\\") + esc + "'");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        std::string digits = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double parsed = std::strtod(digits.c_str(), &end);
        if (end != digits.c_str() + digits.size() || digits.empty())
            fail("malformed number '" + digits + "'");
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.number = parsed;
        return value;
    }

    JsonValue
    parseKeyword()
    {
        JsonValue value;
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            value.kind = JsonValue::Kind::Bool;
        } else if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
        } else {
            fail("unrecognized token");
        }
        return value;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// ---- spec interpretation ----

[[noreturn]] void
jobFail(size_t index, const std::string &what)
{
    CC_FATAL("job spec: job ", index, ": ", what);
}

const JsonValue &
require(const JsonValue &job, size_t index, const std::string &key,
        JsonValue::Kind kind)
{
    const JsonValue *value = job.find(key);
    if (!value)
        jobFail(index, "missing required field \"" + key + "\"");
    if (value->kind != kind)
        jobFail(index, "field \"" + key + "\" must be a " +
                           kindName(kind) + ", got " +
                           kindName(value->kind));
    return *value;
}

/** Integer field in [min, max], or @p fallback when absent. */
long
intField(const JsonValue &job, size_t index, const std::string &key,
         long fallback, long min, long max)
{
    const JsonValue *value = job.find(key);
    if (!value)
        return fallback;
    if (value->kind != JsonValue::Kind::Number ||
        value->number != std::floor(value->number))
        jobFail(index, "field \"" + key + "\" must be an integer");
    if (value->number < static_cast<double>(min) ||
        value->number > static_cast<double>(max))
        jobFail(index, "field \"" + key + "\" out of range [" +
                           std::to_string(min) + ", " +
                           std::to_string(max) + "]");
    return static_cast<long>(value->number);
}

std::string
stringField(const JsonValue &job, size_t index, const std::string &key,
            const std::string &fallback)
{
    const JsonValue *value = job.find(key);
    if (!value)
        return fallback;
    if (value->kind != JsonValue::Kind::String)
        jobFail(index, "field \"" + key + "\" must be a string");
    return value->string;
}

FarmJob
interpretJob(const JsonValue &spec, size_t index)
{
    static const char *const known[] = {
        "workload", "scale",      "scheme",
        "strategy", "max_entries", "max_len",
        "assumed_codeword_nibbles", "refit_max_rounds",
        "layout",   "repeat",      "id",
        "timeout_ms", "retries",
    };
    for (const auto &[key, value] : spec.object) {
        (void)value;
        bool recognized = false;
        for (const char *name : known)
            recognized = recognized || key == name;
        if (!recognized)
            jobFail(index, "unknown field \"" + key + "\"");
    }

    FarmJob job;
    job.workload =
        require(spec, index, "workload", JsonValue::Kind::String).string;
    job.scale = static_cast<int>(
        intField(spec, index, "scale", 1, 1, 1024));

    std::string scheme = stringField(spec, index, "scheme", "nibble");
    auto parsedScheme = compress::parseSchemeName(scheme);
    if (!parsedScheme)
        jobFail(index, "unknown scheme \"" + scheme + "\" (expected " +
                           compress::schemeCliNames(", ") + ")");
    job.config.scheme = *parsedScheme;

    std::string strategy = stringField(spec, index, "strategy", "greedy");
    auto parsedStrategy = compress::parseStrategyName(strategy);
    if (!parsedStrategy)
        jobFail(index, "unknown strategy \"" + strategy +
                           "\" (expected " +
                           compress::strategyCliNames(", ") + ")");
    job.config.strategy = *parsedStrategy;

    std::string layout = stringField(spec, index, "layout", "linear");
    auto parsedLayout = compress::parseLayoutModeName(layout);
    if (!parsedLayout)
        jobFail(index, "unknown layout \"" + layout +
                           "\" (expected linear or hotcold)");
    job.config.layout = *parsedLayout;

    long maxCodewords =
        compress::schemeParams(job.config.scheme).maxCodewords;
    job.config.maxEntries = static_cast<uint32_t>(intField(
        spec, index, "max_entries", 4680, 1, maxCodewords));
    job.config.maxEntryLen = static_cast<uint32_t>(
        intField(spec, index, "max_len", 4, 1, 64));
    job.config.assumedCodewordNibbles = static_cast<uint32_t>(
        intField(spec, index, "assumed_codeword_nibbles", 0, 0, 8));
    job.config.refitMaxRounds = static_cast<uint32_t>(
        intField(spec, index, "refit_max_rounds", 6, 0, 64));

    // -1 (absent) defers to the farm-level defaults; 0 is an explicit
    // "no deadline" / "no retries". A day-long deadline cap keeps a
    // fat-fingered value from disabling fault detection quietly.
    job.timeoutMs = static_cast<int64_t>(
        intField(spec, index, "timeout_ms", -1, -1, 86400000));
    job.retries = static_cast<int32_t>(
        intField(spec, index, "retries", -1, -1, 100));

    job.id = stringField(spec, index, "id",
                         job.workload + "/" +
                             compress::schemeCliName(job.config.scheme) +
                             "/" +
                             compress::strategyName(job.config.strategy));
    return job;
}

} // namespace

std::string
writeJobSpec(const std::vector<FarmJob> &jobs)
{
    JsonWriter json;
    json.beginObject();
    json.key("jobs");
    json.beginArray();
    for (const FarmJob &job : jobs) {
        json.beginObject();
        json.member("workload", job.workload);
        json.member("scale", job.scale);
        json.member("scheme", compress::schemeCliName(job.config.scheme));
        json.member("strategy",
                    compress::strategyName(job.config.strategy));
        // The pipeline clips maxEntries to the scheme's codeword
        // budget; emit the clipped value so the spec re-parses under
        // the field's scheme-dependent range check.
        json.member("max_entries",
                    std::min(job.config.maxEntries,
                             static_cast<uint32_t>(
                                 compress::schemeParams(job.config.scheme)
                                     .maxCodewords)));
        json.member("max_len", job.config.maxEntryLen);
        json.member("assumed_codeword_nibbles",
                    job.config.assumedCodewordNibbles);
        json.member("refit_max_rounds", job.config.refitMaxRounds);
        if (job.config.layout != compress::LayoutMode::Linear)
            json.member("layout",
                        compress::layoutModeName(job.config.layout));
        if (job.timeoutMs >= 0)
            json.member("timeout_ms", job.timeoutMs);
        if (job.retries >= 0)
            json.member("retries", static_cast<int>(job.retries));
        json.member("id", job.id);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::vector<FarmJob>
parseJobSpec(const std::string &text)
{
    JsonValue root = JsonParser(text).parse();
    if (root.kind != JsonValue::Kind::Object)
        CC_FATAL("job spec: top level must be an object, got ",
                 kindName(root.kind));
    const JsonValue *jobs = root.find("jobs");
    if (!jobs || jobs->kind != JsonValue::Kind::Array)
        CC_FATAL("job spec: missing \"jobs\" array");
    if (jobs->array.empty())
        CC_FATAL("job spec: \"jobs\" array is empty");

    std::vector<FarmJob> queue;
    for (size_t i = 0; i < jobs->array.size(); ++i) {
        const JsonValue &spec = jobs->array[i];
        if (spec.kind != JsonValue::Kind::Object)
            CC_FATAL("job spec: job ", i, ": must be an object, got ",
                     kindName(spec.kind));
        FarmJob job = interpretJob(spec, i);
        long repeat = intField(spec, i, "repeat", 1, 1, 4096);
        for (long copy = 0; copy < repeat; ++copy) {
            FarmJob clone = job;
            if (repeat > 1)
                clone.id += "#" + std::to_string(copy);
            queue.push_back(std::move(clone));
        }
    }
    return queue;
}

} // namespace codecomp::farm
