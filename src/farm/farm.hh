/**
 * @file
 * ccfarm: a batched, cached multi-program compression service.
 *
 * A farm run takes a queue of jobs -- (workload program, compressor
 * config) pairs -- and produces one aggregated report. The run:
 *
 *  - builds each distinct (workload, scale) program exactly once, in
 *    parallel on the global worker pool;
 *  - shards the job queue across the same pool (one task per job; a
 *    job's own candidate enumeration then runs inline, so the pool is
 *    never re-entered concurrently);
 *  - deduplicates Enumerate/Select work through a shared PipelineCache
 *    (compress/cache.hh) keyed by program content hash + config --
 *    sweeps of one program across schemes and strategies share a
 *    single candidate enumeration, and duplicate (program, config)
 *    jobs share the whole selection;
 *  - streams per-job results (sizes, image bytes + FNV-1a64 digest,
 *    per-pass PipelineStats) into a FarmReport in job order.
 *
 * Output images are bit-identical to the serial single-program path
 * (compress::compressProgram) for any pool width, cache on or off:
 * jobs are index-addressed, and both cached stages are deterministic
 * pure functions of the cache key.
 *
 * The starter corpus is the paper's sweep: 8 workloads x every
 * registered scheme x {greedy, refit} strategies. Larger corpora come
 * from job-spec JSON files (jobspec.hh).
 */

#ifndef CODECOMP_FARM_FARM_HH
#define CODECOMP_FARM_FARM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "compress/cache.hh"
#include "compress/compressor.hh"
#include "compress/pipeline.hh"

namespace codecomp::farm {

/** One compression job: which program, compressed how. */
struct FarmJob
{
    std::string id;       //!< report key, e.g. "gcc/nibble/refit"
    std::string workload; //!< benchmark name (workloads.hh)
    int scale = 1;        //!< workload generator scale factor
    compress::CompressorConfig config;
};

struct FarmOptions
{
    bool cache = true; //!< share a PipelineCache across the run

    /** Retain each job's serialized .cci bytes in its result (the
     *  digest is always computed). */
    bool keepImages = true;
};

/** Outcome of one job, in job-queue order in the report. */
struct FarmJobResult
{
    std::string id;
    std::string workload;
    std::string scheme;
    std::string strategy;
    std::string error; //!< non-empty = the job failed

    std::vector<uint8_t> imageBytes; //!< saveImage() (if keepImages)
    uint64_t imageFnv64 = 0;         //!< digest of imageBytes

    uint64_t totalBytes = 0;
    uint64_t textBytes = 0;
    uint64_t dictBytes = 0;
    double ratio = 0.0;
    uint32_t farBranchExpansions = 0;

    compress::PipelineStats stats; //!< per-pass wall time + counters
    double millis = 0.0;           //!< job wall time (pipeline + save)

    bool ok() const { return error.empty(); }
};

struct FarmReport
{
    std::vector<FarmJobResult> results; //!< one per job, queue order
    compress::PipelineCache::Stats cacheStats;
    bool cacheEnabled = true;
    unsigned poolJobs = 1;          //!< worker-pool width used
    double buildMillis = 0.0;       //!< program construction wall time
    double compressMillis = 0.0;    //!< job-queue wall time
    double wallMillis = 0.0;        //!< whole run

    size_t failures() const;

    /** Sum of per-pass millis across every job, by pass name. */
    std::vector<std::pair<std::string, double>> passTotals() const;

    /**
     * The run-invariant half of the report: per-job identity, sizes,
     * ratio, and image digest -- everything except wall times and
     * pool/cache configuration. Byte-identical across pool widths and
     * cache on/off (the farm determinism tests assert exactly this).
     */
    std::string resultsJson() const;

    /** The full report: results (with per-job pipeline stats and wall
     *  times) plus run totals, throughput, and cache counters. */
    std::string toJson() const;
};

/** The 8 workloads x registered schemes x {greedy, refit} starter
 *  corpus. */
std::vector<FarmJob> starterCorpus();

/**
 * Run @p jobs on the global worker pool and aggregate the results.
 * Unknown workload names and non-positive scales are catchable fatals
 * before any work starts; a failure inside one job (e.g. an invalid
 * config) is captured in that job's result and does not abort the run.
 */
FarmReport runFarm(const std::vector<FarmJob> &jobs,
                   const FarmOptions &options = {});

} // namespace codecomp::farm

#endif // CODECOMP_FARM_FARM_HH
