/**
 * @file
 * ccfarm: a batched, cached, fault-tolerant multi-program compression
 * service.
 *
 * A farm run takes a queue of jobs -- (workload program, compressor
 * config) pairs -- and produces one aggregated report. The run:
 *
 *  - builds each distinct (workload, scale) program exactly once, in
 *    parallel on the global worker pool;
 *  - shards the job queue across the same pool (one task per job; a
 *    job's own candidate enumeration then runs inline, so the pool is
 *    never re-entered concurrently);
 *  - deduplicates Enumerate/Select work through a shared PipelineCache
 *    (compress/cache.hh) keyed by program content hash + config --
 *    optionally backed by a crash-safe on-disk store (cacheDir) that
 *    survives across runs and processes;
 *  - streams per-job results (sizes, image bytes + FNV-1a64 digest,
 *    per-pass PipelineStats) into a FarmReport in job order.
 *
 * Fault tolerance (FarmOptions::isolate) moves each job into a forked
 * worker subprocess (the ccfarm binary in its hidden --worker mode):
 * a CC_PANIC, machine check, OOM-kill, or segfault in one job becomes
 * a structured per-job failure -- classified by FailureKind -- instead
 * of taking down the run. Jobs carry wall-clock deadlines (hung
 * workers are killed and reported as Timeout) and a retry budget with
 * exponential backoff + seeded jitter; attempts and the final failure
 * kind land in the report.
 *
 * Output images are bit-identical to the serial single-program path
 * (compress::compressProgram) for any pool width, isolated or inline,
 * on any attempt, cache off/on/persistent: jobs are index-addressed,
 * and both cached stages are deterministic pure functions of the
 * cache key.
 *
 * The starter corpus is the paper's sweep: 8 workloads x every
 * registered scheme x {greedy, refit} strategies. Larger corpora come
 * from job-spec JSON files (jobspec.hh).
 */

#ifndef CODECOMP_FARM_FARM_HH
#define CODECOMP_FARM_FARM_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "compress/cache.hh"
#include "compress/compressor.hh"
#include "compress/pipeline.hh"

namespace codecomp::farm {

/** One compression job: which program, compressed how. */
struct FarmJob
{
    std::string id;       //!< report key, e.g. "gcc/nibble/refit"
    std::string workload; //!< benchmark name (workloads.hh)
    int scale = 1;        //!< workload generator scale factor
    compress::CompressorConfig config;

    /** Per-job wall-clock deadline in ms; -1 = the farm default
     *  (FarmOptions::jobTimeoutMs), 0 = explicitly no deadline.
     *  Enforced only for isolated jobs (spec key "timeout_ms"). */
    int64_t timeoutMs = -1;

    /** Per-job retry budget; -1 = the farm default
     *  (FarmOptions::retries). Spec key "retries". */
    int32_t retries = -1;
};

/** Why a job ultimately failed -- the farm's failure taxonomy. */
enum class FailureKind : uint8_t {
    None = 0,     //!< the job succeeded
    Crash,        //!< worker died: signal, CC_PANIC, or abrupt exit
    Timeout,      //!< deadline expired; the worker was killed
    LoadError,    //!< spec/result/file plumbing failed (LoadFailure)
    MachineCheck, //!< a MachineCheckError surfaced from the worker
    SpecError,    //!< deterministic job error (bad config); not retried
};

const char *failureKindName(FailureKind kind);

/** Seeded deliberate-fault plan for the farm's self-test campaign
 *  (ccfarm --inject): crash or hang a deterministic subset of worker
 *  subprocesses. CorruptCache is driven at the tool level (bit-flip
 *  the persistent store between runs), not per worker. */
enum class InjectKind : uint8_t { None = 0, Crash, Hang, CorruptCache };

struct FaultPlan
{
    InjectKind kind = InjectKind::None;
    uint64_t seed = 1;
    uint32_t rateNum = 1; //!< inject ~rateNum/rateDen of the jobs
    uint32_t rateDen = 3;

    /** Inject only a job's first attempt (a transient fault: retries
     *  recover), instead of every attempt (a hard fault: the job
     *  fails with a fully-attributed report entry). */
    bool firstAttemptOnly = false;
};

/** Whether @p plan injects a fault into (job @p jobIndex, attempt
 *  @p attempt). Deterministic in (seed, jobIndex): the injected job
 *  subset is identical across runs, pool widths, and retries. */
bool shouldInject(const FaultPlan &plan, size_t jobIndex,
                  uint32_t attempt);

/** Retry delay before @p attempt (>= 1): exponential in the attempt
 *  with seeded jitter in [50%, 150%], capped. Deterministic in
 *  (seed, jobIndex, attempt) so reports are reproducible. */
uint64_t backoffMillis(uint32_t attempt, uint64_t baseMs, uint64_t capMs,
                       uint64_t seed, size_t jobIndex);

struct FarmOptions
{
    bool cache = true; //!< share a PipelineCache across the run

    /** Retain each job's serialized .cci bytes in its result (the
     *  digest is always computed). */
    bool keepImages = true;

    /** Non-empty: back the PipelineCache with this directory
     *  (crash-safe checksummed entry files; see cache.hh). Isolated
     *  workers share work through it across processes. */
    std::string cacheDir;

    /** In-memory cache caps (0 = unlimited); see
     *  PipelineCache::setCapacity. */
    size_t cacheMaxEntries = 0;
    uint64_t cacheMaxBytes = 0;

    /** Run each job in a worker subprocess (process isolation). */
    bool isolate = false;

    /** Worker executable (the ccfarm binary); "" resolves to the
     *  running executable via /proc/self/exe. */
    std::string workerBinary;

    /** Directory for per-job spec/result scratch files; "" uses the
     *  system temp directory. A per-run subdirectory is created and
     *  removed. */
    std::string scratchDir;

    /** Farm-default per-job deadline in ms (0 = none); per-job
     *  FarmJob::timeoutMs overrides. Isolated jobs only. */
    uint64_t jobTimeoutMs = 0;

    /** Farm-default retry budget per job; per-job FarmJob::retries
     *  overrides. Isolated jobs only. */
    uint32_t retries = 0;

    /** Exponential-backoff base and cap between attempts. */
    uint64_t backoffBaseMs = 50;
    uint64_t backoffCapMs = 2000;

    /** Seed for backoff jitter and fault injection. */
    uint64_t seed = 1;

    /** Deliberate-fault plan (self-test); requires isolate for
     *  Crash/Hang. */
    FaultPlan inject;
};

/** Outcome of one job, in job-queue order in the report. */
struct FarmJobResult
{
    std::string id;
    std::string workload;
    std::string scheme;
    std::string strategy;
    std::string error; //!< non-empty = the job failed

    std::vector<uint8_t> imageBytes; //!< saveImage() (if keepImages)
    uint64_t imageFnv64 = 0;         //!< digest of imageBytes

    uint64_t totalBytes = 0;
    uint64_t textBytes = 0;
    uint64_t dictBytes = 0;
    double ratio = 0.0;
    uint32_t farBranchExpansions = 0;

    compress::PipelineStats stats; //!< per-pass wall time + counters
    double millis = 0.0;           //!< job wall time (all attempts)

    uint32_t attempts = 1;         //!< executions tried (1 = no retry)
    FailureKind failureKind = FailureKind::None;

    bool ok() const { return error.empty(); }
};

struct FarmReport
{
    std::vector<FarmJobResult> results; //!< one per job, queue order
    compress::PipelineCache::Stats cacheStats;
    bool cacheEnabled = true;
    bool isolated = false;          //!< jobs ran in worker subprocesses
    unsigned poolJobs = 1;          //!< worker-pool width used
    double buildMillis = 0.0;       //!< program construction wall time
    double compressMillis = 0.0;    //!< job-queue wall time
    double wallMillis = 0.0;        //!< whole run

    size_t failures() const;

    /** Jobs that failed with @p kind. */
    size_t failuresOfKind(FailureKind kind) const;

    /** Sum of per-pass millis across every job, by pass name. */
    std::vector<std::pair<std::string, double>> passTotals() const;

    /**
     * The run-invariant half of the report: per-job identity, sizes,
     * ratio, and image digest -- everything except wall times,
     * attempt counts, and pool/cache configuration. Byte-identical
     * across pool widths, isolation on/off, retries, and cache
     * off/on/persistent (the farm determinism tests assert exactly
     * this).
     */
    std::string resultsJson() const;

    /** The full report: results (with per-job pipeline stats, wall
     *  times, attempts, and failure kinds) plus run totals,
     *  throughput, and cache counters. */
    std::string toJson() const;
};

/** The 8 workloads x registered schemes x {greedy, refit} starter
 *  corpus. */
std::vector<FarmJob> starterCorpus();

/**
 * Compress one job of @p program (whose PipelineCache::programHash is
 * @p programHash when @p cache is non-null) and capture the outcome --
 * success or in-band failure -- as a result. The shared single-job
 * body of the inline farm path and the --worker subprocess mode.
 */
FarmJobResult runFarmJob(const FarmJob &job, const Program &program,
                         uint64_t programHash,
                         compress::PipelineCache *cache, bool keepImages);

/**
 * Run @p jobs and aggregate the results. Unknown workload names and
 * non-positive scales are catchable fatals before any work starts; a
 * failure inside one job (an invalid config, or -- under isolate -- a
 * worker crash, hang, or kill) is captured in that job's result and
 * does not abort the run. An empty queue yields a valid empty report.
 */
FarmReport runFarm(const std::vector<FarmJob> &jobs,
                   const FarmOptions &options = {});

} // namespace codecomp::farm

#endif // CODECOMP_FARM_FARM_HH
