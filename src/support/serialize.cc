#include "support/serialize.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace codecomp {

const char *
loadStatusName(LoadStatus status)
{
    switch (status) {
      case LoadStatus::Ok:
        return "ok";
      case LoadStatus::IoError:
        return "io-error";
      case LoadStatus::Truncated:
        return "truncated";
      case LoadStatus::BadMagic:
        return "bad-magic";
      case LoadStatus::BadVersion:
        return "bad-version";
      case LoadStatus::BadChecksum:
        return "bad-checksum";
      case LoadStatus::BadValue:
        return "bad-value";
      case LoadStatus::TrailingBytes:
        return "trailing-bytes";
    }
    return "unknown";
}

std::string
LoadError::message() const
{
    std::string text = loadStatusName(status);
    if (!context.empty())
        text += " in " + context;
    if (status != LoadStatus::IoError)
        text += " at byte " + std::to_string(offset);
    if (!detail.empty())
        text += ": " + detail;
    return text;
}

uint64_t
fnv1a64(const uint8_t *data, size_t size)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i)
        h = (h ^ data[i]) * 0x100000001b3ull;
    return h;
}

namespace {

LoadError
ioError(const std::string &path, const char *what)
{
    return LoadError{LoadStatus::IoError, 0, "'" + path + "'",
                     std::string(what) + ": " + std::strerror(errno)};
}

} // namespace

Result<std::vector<uint8_t>>
tryReadFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return ioError(path, "cannot open for reading");
    long size = -1;
    if (std::fseek(file, 0, SEEK_END) == 0)
        size = std::ftell(file);
    if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
        LoadError error = ioError(path, "cannot determine file size");
        std::fclose(file);
        return error;
    }
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    size_t read = bytes.empty()
                      ? 0
                      : std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (read != bytes.size())
        return LoadError{LoadStatus::IoError, read, "'" + path + "'",
                         "short read: got " + std::to_string(read) +
                             " of " + std::to_string(bytes.size()) +
                             " bytes"};
    return bytes;
}

std::optional<LoadError>
tryWriteFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return ioError(path, "cannot open for writing");
    size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
    if (std::fclose(file) != 0)
        return ioError(path, "cannot close after writing");
    if (written != bytes.size())
        return LoadError{LoadStatus::IoError, written, "'" + path + "'",
                         "short write: wrote " + std::to_string(written) +
                             " of " + std::to_string(bytes.size()) +
                             " bytes"};
    return std::nullopt;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    Result<std::vector<uint8_t>> result = tryReadFile(path);
    if (!result.ok())
        throw LoadFailure(result.error());
    return result.take();
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    if (std::optional<LoadError> error = tryWriteFile(path, bytes))
        throw LoadFailure(*error);
}

} // namespace codecomp
