#include "support/serialize.hh"

#include <cstdio>

namespace codecomp {

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        CC_FATAL("cannot open '", path, "' for reading");
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    size_t read = bytes.empty()
                      ? 0
                      : std::fread(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (read != bytes.size())
        CC_FATAL("short read from '", path, "'");
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        CC_FATAL("cannot open '", path, "' for writing");
    size_t written =
        bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    if (written != bytes.size())
        CC_FATAL("short write to '", path, "'");
}

} // namespace codecomp
