/**
 * @file
 * Minimal streaming JSON writer for machine-readable output (pipeline
 * pass statistics, PERF_JSON benchmark lines, ccompress --stats-json).
 *
 * The writer is a flat state machine over an output string: begin/end
 * an object or array, write a key, write a value. Commas are inserted
 * automatically; strings are escaped per RFC 8259. There is no reader
 * -- the repo emits JSON for external tooling but never parses it.
 */

#ifndef CODECOMP_SUPPORT_JSON_HH
#define CODECOMP_SUPPORT_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace codecomp {

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member key; must be followed by a value or container. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(uint64_t number);
    JsonWriter &value(int64_t number);
    JsonWriter &value(uint32_t number) { return value(static_cast<uint64_t>(number)); }
    JsonWriter &value(int number) { return value(static_cast<int64_t>(number)); }
    JsonWriter &value(bool flag);

    /** Append @p json -- itself a complete serialized JSON value -- as
     *  the next value (separator handling applied, content verbatim).
     *  For splicing one writer's document into another. */
    JsonWriter &raw(std::string_view json);

    /** key(name) + value(v) in one call. */
    template <typename V>
    JsonWriter &
    member(std::string_view name, V &&v)
    {
        key(name);
        return value(std::forward<V>(v));
    }

    /** The serialized document; valid once every container is closed. */
    const std::string &str() const { return out_; }

  private:
    void separate();

    std::string out_;
    std::vector<bool> hasPrior_; //!< per open container: wrote an element
    bool afterKey_ = false;
};

/** Escape @p text as the contents of a JSON string (no quotes added). */
std::string jsonEscape(std::string_view text);

} // namespace codecomp

#endif // CODECOMP_SUPPORT_JSON_HH
