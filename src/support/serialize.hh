/**
 * @file
 * Minimal big-endian binary serialization helpers used by the Program
 * and CompressedImage file formats (the on-disk interchange of the
 * minicc / ccompress / ccrun command-line tools).
 */

#ifndef CODECOMP_SUPPORT_SERIALIZE_HH
#define CODECOMP_SUPPORT_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/logging.hh"

namespace codecomp {

/** Append-only big-endian byte sink. */
class ByteSink
{
  public:
    void put8(uint8_t value) { bytes_.push_back(value); }

    void
    put32(uint32_t value)
    {
        put8(static_cast<uint8_t>(value >> 24));
        put8(static_cast<uint8_t>(value >> 16));
        put8(static_cast<uint8_t>(value >> 8));
        put8(static_cast<uint8_t>(value));
    }

    void
    put64(uint64_t value)
    {
        put32(static_cast<uint32_t>(value >> 32));
        put32(static_cast<uint32_t>(value));
    }

    void
    putString(const std::string &value)
    {
        put32(static_cast<uint32_t>(value.size()));
        bytes_.insert(bytes_.end(), value.begin(), value.end());
    }

    void
    putBlob(const std::vector<uint8_t> &value)
    {
        put32(static_cast<uint32_t>(value.size()));
        bytes_.insert(bytes_.end(), value.begin(), value.end());
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Sequential big-endian byte source; fatal on malformed input. */
class ByteSource
{
  public:
    explicit ByteSource(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {}

    uint8_t
    get8()
    {
        if (pos_ >= bytes_.size())
            CC_FATAL("truncated input file");
        return bytes_[pos_++];
    }

    uint32_t
    get32()
    {
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value = (value << 8) | get8();
        return value;
    }

    uint64_t
    get64()
    {
        uint64_t value = static_cast<uint64_t>(get32()) << 32;
        return value | get32();
    }

    std::string
    getString()
    {
        uint32_t size = get32();
        if (pos_ + size > bytes_.size())
            CC_FATAL("truncated string in input file");
        std::string value(bytes_.begin() + static_cast<long>(pos_),
                          bytes_.begin() + static_cast<long>(pos_ + size));
        pos_ += size;
        return value;
    }

    std::vector<uint8_t>
    getBlob()
    {
        uint32_t size = get32();
        if (pos_ + size > bytes_.size())
            CC_FATAL("truncated blob in input file");
        std::vector<uint8_t> value(
            bytes_.begin() + static_cast<long>(pos_),
            bytes_.begin() + static_cast<long>(pos_ + size));
        pos_ += size;
        return value;
    }

    bool atEnd() const { return pos_ == bytes_.size(); }
    size_t pos() const { return pos_; }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

/** Read a whole file (fatal on failure). */
std::vector<uint8_t> readFile(const std::string &path);

/** Write a whole file (fatal on failure). */
void writeFile(const std::string &path, const std::vector<uint8_t> &bytes);

} // namespace codecomp

#endif // CODECOMP_SUPPORT_SERIALIZE_HH
