/**
 * @file
 * Minimal big-endian binary serialization helpers used by the Program
 * and CompressedImage file formats (the on-disk interchange of the
 * minicc / ccompress / ccrun command-line tools).
 *
 * Deserialization treats its input as untrusted: every structural
 * problem surfaces as a typed LoadError (status code, byte offset,
 * context) rather than a process abort. ByteSource throws LoadFailure
 * (a std::runtime_error carrying the LoadError) on truncation, so
 * legacy callers that catch std::runtime_error keep working, while
 * hardened callers use the Result-returning entry points.
 */

#ifndef CODECOMP_SUPPORT_SERIALIZE_HH
#define CODECOMP_SUPPORT_SERIALIZE_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace codecomp {

/** What went wrong while loading untrusted bytes. */
enum class LoadStatus : uint8_t {
    Ok,
    IoError,       //!< the file could not be read or written
    Truncated,     //!< input ended before a declared field
    BadMagic,      //!< not the expected file type
    BadVersion,    //!< unsupported format version
    BadChecksum,   //!< payload checksum mismatch (bytes corrupted)
    BadValue,      //!< a field value violates a structural invariant
    TrailingBytes, //!< well-formed payload followed by extra bytes
};

const char *loadStatusName(LoadStatus status);

/** One typed deserialization/validation failure. */
struct LoadError
{
    LoadStatus status = LoadStatus::Ok;
    size_t offset = 0;   //!< byte offset in the input where it surfaced
    std::string context; //!< what was being parsed (field or phase)
    std::string detail;  //!< specifics: values, limits, paths

    /** One-line human-readable rendering. */
    std::string message() const;
};

/** LoadError as a throwable; derives std::runtime_error so existing
 *  catch sites (tools, tests) see it without modification. */
class LoadFailure : public std::runtime_error
{
  public:
    explicit LoadFailure(LoadError error)
        : std::runtime_error(error.message()), error_(std::move(error))
    {}

    const LoadError &error() const { return error_; }

  private:
    LoadError error_;
};

/**
 * Value-or-LoadError result of a hardened loader. Deliberately tiny:
 * implicit construction from either side, and value() panics when
 * consulted on an error (callers must check ok() first).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(LoadError error) : error_(std::move(error))
    {
        CC_ASSERT(error_.status != LoadStatus::Ok,
                  "Result error must carry a failure status");
    }

    bool ok() const { return value_.has_value(); }

    const T &
    value() const
    {
        CC_ASSERT(ok(), "Result::value() on error: ", error_.message());
        return *value_;
    }

    T
    take()
    {
        CC_ASSERT(ok(), "Result::take() on error: ", error_.message());
        return std::move(*value_);
    }

    const LoadError &
    error() const
    {
        CC_ASSERT(!ok(), "Result::error() on success");
        return error_;
    }

  private:
    std::optional<T> value_;
    LoadError error_;
};

/** FNV-1a over @p size bytes; the whole-payload checksum of the v2
 *  file formats (and the hash family Machine::stateHash uses). */
uint64_t fnv1a64(const uint8_t *data, size_t size);

inline uint64_t
fnv1a64(const std::vector<uint8_t> &bytes)
{
    return fnv1a64(bytes.data(), bytes.size());
}

/** Append-only big-endian byte sink. */
class ByteSink
{
  public:
    void put8(uint8_t value) { bytes_.push_back(value); }

    void
    put16(uint16_t value)
    {
        put8(static_cast<uint8_t>(value >> 8));
        put8(static_cast<uint8_t>(value));
    }

    void
    put32(uint32_t value)
    {
        put8(static_cast<uint8_t>(value >> 24));
        put8(static_cast<uint8_t>(value >> 16));
        put8(static_cast<uint8_t>(value >> 8));
        put8(static_cast<uint8_t>(value));
    }

    void
    put64(uint64_t value)
    {
        put32(static_cast<uint32_t>(value >> 32));
        put32(static_cast<uint32_t>(value));
    }

    void
    putString(const std::string &value)
    {
        put32(static_cast<uint32_t>(value.size()));
        bytes_.insert(bytes_.end(), value.begin(), value.end());
    }

    void
    putBlob(const std::vector<uint8_t> &value)
    {
        put32(static_cast<uint32_t>(value.size()));
        bytes_.insert(bytes_.end(), value.begin(), value.end());
    }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/**
 * Sequential big-endian byte source over untrusted input. Reading past
 * the end throws LoadFailure{Truncated} carrying the byte offset and
 * the current context string (set by the caller to name the field or
 * section being parsed, so diagnostics say *what* was cut off).
 */
class ByteSource
{
  public:
    explicit ByteSource(const std::vector<uint8_t> &bytes)
        : bytes_(bytes)
    {}

    /** Name the region being parsed; reported in truncation errors. */
    void setContext(std::string context) { context_ = std::move(context); }
    const std::string &context() const { return context_; }

    uint8_t
    get8()
    {
        if (pos_ >= bytes_.size())
            failTruncated("input ended inside a 1-byte field");
        return bytes_[pos_++];
    }

    uint16_t
    get16()
    {
        uint16_t value = get8();
        return static_cast<uint16_t>((value << 8) | get8());
    }

    uint32_t
    get32()
    {
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value = (value << 8) | get8();
        return value;
    }

    uint64_t
    get64()
    {
        uint64_t value = static_cast<uint64_t>(get32()) << 32;
        return value | get32();
    }

    std::string
    getString()
    {
        uint32_t size = get32();
        if (size > bytes_.size() - pos_)
            failTruncated("declared string length " +
                          std::to_string(size) + " exceeds remaining " +
                          std::to_string(bytes_.size() - pos_) + " bytes");
        std::string value(bytes_.begin() + static_cast<long>(pos_),
                          bytes_.begin() + static_cast<long>(pos_ + size));
        pos_ += size;
        return value;
    }

    std::vector<uint8_t>
    getBlob()
    {
        uint32_t size = get32();
        if (size > bytes_.size() - pos_)
            failTruncated("declared blob length " + std::to_string(size) +
                          " exceeds remaining " +
                          std::to_string(bytes_.size() - pos_) + " bytes");
        std::vector<uint8_t> value(
            bytes_.begin() + static_cast<long>(pos_),
            bytes_.begin() + static_cast<long>(pos_ + size));
        pos_ += size;
        return value;
    }

    bool atEnd() const { return pos_ == bytes_.size(); }
    size_t pos() const { return pos_; }
    size_t remaining() const { return bytes_.size() - pos_; }

  private:
    [[noreturn]] void
    failTruncated(std::string detail) const
    {
        throw LoadFailure(LoadError{LoadStatus::Truncated, pos_, context_,
                                    std::move(detail)});
    }

    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
    std::string context_;
};

/** @{ Hardened whole-file I/O: LoadStatus::IoError results carry the
 *  path and the strerror(errno) text, never abort. */
Result<std::vector<uint8_t>> tryReadFile(const std::string &path);
std::optional<LoadError> tryWriteFile(const std::string &path,
                                      const std::vector<uint8_t> &bytes);
/** @} */

/** Read a whole file; throws LoadFailure on I/O errors. */
std::vector<uint8_t> readFile(const std::string &path);

/** Write a whole file; throws LoadFailure on I/O errors. */
void writeFile(const std::string &path, const std::vector<uint8_t> &bytes);

} // namespace codecomp

#endif // CODECOMP_SUPPORT_SERIALIZE_HH
