#include "support/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace codecomp {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!hasPrior_.empty()) {
        if (hasPrior_.back())
            out_ += ',';
        hasPrior_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    hasPrior_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    out_ += '}';
    hasPrior_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    hasPrior_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    out_ += ']';
    hasPrior_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    separate();
    out_ += '"';
    out_ += jsonEscape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    separate();
    // JSON has no inf/nan literals; emit null so aggregators see a
    // well-formed document (a 0-instruction job's CPI, say). Finite
    // values use round-trip precision so parsing the report recovers
    // the exact double that was measured.
    if (!std::isfinite(number)) {
        out_ += "null";
        return *this;
    }
    // Shortest of %.15g/%.16g/%.17g that parses back to the same bits
    // (17 significant digits always round-trip an IEEE double).
    char buf[32];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, number);
        if (std::strtod(buf, nullptr) == number)
            break;
    }
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t number)
{
    separate();
    out_ += std::to_string(number);
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    separate();
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::raw(std::string_view json)
{
    separate();
    out_ += json;
    return *this;
}

} // namespace codecomp
