#include "support/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace codecomp {

namespace {

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** dup2 an opened-for-append file over @p fd; called between fork and
 *  exec, so only async-signal-safe calls. Returns false on failure. */
bool
redirectFd(const char *path, int fd)
{
    int file = ::open(path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (file < 0)
        return false;
    bool ok = ::dup2(file, fd) >= 0;
    ::close(file);
    return ok;
}

} // namespace

const char *
subprocessOutcomeName(SubprocessResult::Outcome outcome)
{
    switch (outcome) {
      case SubprocessResult::Outcome::Exited:
        return "exited";
      case SubprocessResult::Outcome::Signaled:
        return "signaled";
      case SubprocessResult::Outcome::TimedOut:
        return "timed_out";
      case SubprocessResult::Outcome::SpawnFailed:
        return "spawn_failed";
    }
    return "?";
}

SubprocessResult
runSubprocess(const std::vector<std::string> &argv,
              const SubprocessOptions &options)
{
    SubprocessResult result;
    Clock::time_point start = Clock::now();
    if (argv.empty()) {
        result.error = "empty argv";
        return result;
    }

    std::vector<char *> args;
    args.reserve(argv.size() + 1);
    for (const std::string &arg : argv)
        args.push_back(const_cast<char *>(arg.c_str()));
    args.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        result.error = std::strerror(errno);
        return result;
    }
    if (pid == 0) {
        // Child: redirect, exec, and on any failure exit with a code
        // the parent cannot confuse with the tool exit contract (0-3).
        if (!options.stdoutPath.empty() &&
            !redirectFd(options.stdoutPath.c_str(), STDOUT_FILENO))
            ::_exit(127);
        if (!options.stderrPath.empty() &&
            !redirectFd(options.stderrPath.c_str(), STDERR_FILENO))
            ::_exit(127);
        ::execv(args[0], args.data());
        ::_exit(127);
    }

    // Parent: poll for exit; past the deadline, SIGKILL and reap. The
    // poll interval is short enough that deadline overshoot is noise
    // next to the multi-millisecond jobs the farm runs.
    int status = 0;
    bool killed = false;
    for (;;) {
        pid_t waited = ::waitpid(pid, &status, WNOHANG);
        if (waited == pid)
            break;
        if (waited < 0 && errno != EINTR) {
            result.error = std::strerror(errno);
            return result;
        }
        if (!killed && options.timeoutMs > 0 &&
            millisSince(start) >= static_cast<double>(options.timeoutMs)) {
            ::kill(pid, SIGKILL);
            killed = true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    result.millis = millisSince(start);
    if (killed) {
        result.outcome = SubprocessResult::Outcome::TimedOut;
    } else if (WIFSIGNALED(status)) {
        result.outcome = SubprocessResult::Outcome::Signaled;
        result.signal = WTERMSIG(status);
    } else {
        result.outcome = SubprocessResult::Outcome::Exited;
        result.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    return result;
}

std::string
selfExecutablePath()
{
    char buf[4096];
    ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (len <= 0)
        return "";
    buf[len] = '\0';
    return buf;
}

} // namespace codecomp
