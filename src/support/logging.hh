/**
 * @file
 * Error and status reporting helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant was violated (a library bug); aborts.
 * fatal()  -- the caller handed us something unusable (a user error);
 *             exits with status 1.
 * warn()   -- something works well enough but deserves attention.
 * inform() -- plain status output.
 */

#ifndef CODECOMP_SUPPORT_LOGGING_HH
#define CODECOMP_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace codecomp {

namespace detail {

/** Format the variadic tail of a log call into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace codecomp

#define CC_PANIC(...)                                                        \
    ::codecomp::detail::panicImpl(__FILE__, __LINE__,                        \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_FATAL(...)                                                        \
    ::codecomp::detail::fatalImpl(__FILE__, __LINE__,                        \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_WARN(...)                                                         \
    ::codecomp::detail::warnImpl(__FILE__, __LINE__,                         \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_INFORM(...)                                                       \
    ::codecomp::detail::informImpl(                                          \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define CC_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            CC_PANIC("assertion failed: " #cond " ",                        \
                     ::codecomp::detail::formatMessage(__VA_ARGS__));        \
        }                                                                    \
    } while (0)

#endif // CODECOMP_SUPPORT_LOGGING_HH
