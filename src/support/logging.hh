/**
 * @file
 * Error and status reporting helpers in the gem5 idiom.
 *
 * panic()  -- an internal invariant was violated (a library bug); aborts.
 * fatal()  -- the caller handed us something unusable (a user error);
 *             exits with status 1.
 * warn()   -- something works well enough but deserves attention.
 * inform() -- plain status output.
 */

#ifndef CODECOMP_SUPPORT_LOGGING_HH
#define CODECOMP_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace codecomp {

/** Thrown instead of aborting when a PanicTrap is active (see below). */
class PanicError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII scope that converts CC_PANIC / CC_ASSERT failures on the current
 * thread into PanicError exceptions instead of aborting the process.
 *
 * The lockstep verifier runs deliberately-corrupted images whose
 * execution may trip internal invariants (mid-item fetches, out-of-range
 * memory accesses); trapping the panic lets the harness report the crash
 * as a divergence with full context instead of dying. Outside a trap
 * scope panics abort as usual, so death tests and production invariants
 * are unaffected. Traps nest.
 */
class PanicTrap
{
  public:
    PanicTrap();
    ~PanicTrap();
    PanicTrap(const PanicTrap &) = delete;
    PanicTrap &operator=(const PanicTrap &) = delete;

  private:
    bool prev_;
};

namespace detail {

/** Format the variadic tail of a log call into one string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

} // namespace codecomp

#define CC_PANIC(...)                                                        \
    ::codecomp::detail::panicImpl(__FILE__, __LINE__,                        \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_FATAL(...)                                                        \
    ::codecomp::detail::fatalImpl(__FILE__, __LINE__,                        \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_WARN(...)                                                         \
    ::codecomp::detail::warnImpl(__FILE__, __LINE__,                         \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

#define CC_INFORM(...)                                                       \
    ::codecomp::detail::informImpl(                                          \
        ::codecomp::detail::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; active in all build types. */
#define CC_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            CC_PANIC("assertion failed: " #cond " ",                        \
                     ::codecomp::detail::formatMessage(__VA_ARGS__));        \
        }                                                                    \
    } while (0)

#endif // CODECOMP_SUPPORT_LOGGING_HH
