/**
 * @file
 * Bit- and nibble-granular byte-stream writers and readers.
 *
 * The nibble classes are the substrate for the paper's 4-bit aligned
 * variable-length codeword encoding (Figure 10): compressed programs are
 * sequences of 4-bit units, written most-significant nibble of each byte
 * first (matching the big-endian instruction memory of the target ISA).
 *
 * The bit classes serve the entropy-coding baselines (Huffman / CCRP and
 * LZW), which are not nibble aligned.
 */

#ifndef CODECOMP_SUPPORT_BITSTREAM_HH
#define CODECOMP_SUPPORT_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace codecomp {

/**
 * Append-only nibble (4-bit unit) writer. Nibble 0 of byte 0 is the high
 * nibble of the first byte.
 */
class NibbleWriter
{
  public:
    /** Append the low 4 bits of @p value as one nibble. */
    void
    putNibble(uint8_t value)
    {
        CC_ASSERT(value <= 0xf, "nibble out of range");
        if (count_ % 2 == 0) {
            bytes_.push_back(static_cast<uint8_t>(value << 4));
        } else {
            bytes_.back() |= value;
        }
        ++count_;
    }

    /** Append @p n nibbles taken from the low 4n bits, high nibble first. */
    void
    putNibbles(uint32_t value, unsigned n)
    {
        CC_ASSERT(n <= 8, "too many nibbles");
        for (unsigned i = n; i-- > 0;)
            putNibble(static_cast<uint8_t>((value >> (4 * i)) & 0xf));
    }

    /** Append a full 32-bit word as 8 nibbles (big-endian nibble order). */
    void putWord(uint32_t word) { putNibbles(word, 8); }

    /** Number of nibbles written so far. */
    size_t nibbleCount() const { return count_; }

    /** Backing bytes; the final byte's low nibble is zero if count is odd. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Size in bytes, rounding a trailing half-byte up. */
    size_t sizeBytes() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
    size_t count_ = 0;
};

/** Sequential reader over a nibble stream; also supports random seeks. */
class NibbleReader
{
  public:
    /**
     * The nibble count is always explicit. A byte-vector constructor
     * used to assume bytes.size() * 2 nibbles, which silently granted
     * odd-length streams a phantom trailing pad nibble -- and a pad
     * nibble of 0 decodes as a valid rank-0 codeword under
     * Scheme::Nibble. Producers know their exact count
     * (NibbleWriter::nibbleCount(), CompressedImage::textNibbles), so
     * they must pass it.
     */
    NibbleReader(const uint8_t *data, size_t nibble_count)
        : data_(data), count_(nibble_count)
    {}

    /** Read one nibble at the cursor and advance. */
    uint8_t
    getNibble()
    {
        CC_ASSERT(pos_ < count_, "nibble read past end");
        uint8_t byte = data_[pos_ / 2];
        uint8_t value = (pos_ % 2 == 0) ? (byte >> 4) : (byte & 0xf);
        ++pos_;
        return value;
    }

    /** Read @p n nibbles as one value, high nibble first. */
    uint32_t
    getNibbles(unsigned n)
    {
        CC_ASSERT(n <= 8, "too many nibbles");
        uint32_t value = 0;
        for (unsigned i = 0; i < n; ++i)
            value = (value << 4) | getNibble();
        return value;
    }

    uint32_t getWord() { return getNibbles(8); }

    size_t pos() const { return pos_; }
    void seek(size_t nibble_pos) { pos_ = nibble_pos; }
    size_t size() const { return count_; }
    bool atEnd() const { return pos_ >= count_; }

  private:
    const uint8_t *data_;
    size_t count_;
    size_t pos_ = 0;
};

/** Append-only MSB-first bit writer. */
class BitWriter
{
  public:
    void
    putBit(bool bit)
    {
        if (count_ % 8 == 0)
            bytes_.push_back(0);
        if (bit)
            bytes_.back() |= static_cast<uint8_t>(0x80u >> (count_ % 8));
        ++count_;
    }

    /** Append the low @p n bits of @p value, most significant first. */
    void
    putBits(uint32_t value, unsigned n)
    {
        CC_ASSERT(n <= 32, "too many bits");
        for (unsigned i = n; i-- > 0;)
            putBit((value >> i) & 1);
    }

    size_t bitCount() const { return count_; }
    const std::vector<uint8_t> &bytes() const { return bytes_; }
    size_t sizeBytes() const { return bytes_.size(); }

  private:
    std::vector<uint8_t> bytes_;
    size_t count_ = 0;
};

/** Sequential MSB-first bit reader. */
class BitReader
{
  public:
    /**
     * The bit count is always explicit, mirroring NibbleReader: a
     * byte-vector constructor used to assume bytes.size() * 8 bits,
     * silently granting byte-padded streams up to 7 phantom trailing
     * bits that a variable-width decoder can misread as a final code.
     * Producers know their exact count (BitWriter::bitCount(), or a
     * header-carried pad width); they must pass it.
     */
    BitReader(const uint8_t *data, size_t bit_count)
        : data_(data), count_(bit_count)
    {}

    bool
    getBit()
    {
        CC_ASSERT(pos_ < count_, "bit read past end");
        bool bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1;
        ++pos_;
        return bit;
    }

    uint32_t
    getBits(unsigned n)
    {
        CC_ASSERT(n <= 32, "too many bits");
        uint32_t value = 0;
        for (unsigned i = 0; i < n; ++i)
            value = (value << 1) | (getBit() ? 1u : 0u);
        return value;
    }

    size_t pos() const { return pos_; }
    size_t size() const { return count_; }
    bool atEnd() const { return pos_ >= count_; }

  private:
    const uint8_t *data_;
    size_t count_;
    size_t pos_ = 0;
};

} // namespace codecomp

#endif // CODECOMP_SUPPORT_BITSTREAM_HH
