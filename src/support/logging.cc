#include "support/logging.hh"

#include <stdexcept>

namespace codecomp {

namespace {

thread_local bool panic_trap_active = false;

} // namespace

PanicTrap::PanicTrap() : prev_(panic_trap_active)
{
    panic_trap_active = true;
}

PanicTrap::~PanicTrap()
{
    panic_trap_active = prev_;
}

namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (panic_trap_active)
        throw PanicError(std::string("panic: ") + msg + " (" + file + ":" +
                         std::to_string(line) + ")");
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit(1) so that library users (and the test
    // suite) can observe user-level errors without losing the process.
    throw std::runtime_error(std::string("fatal: ") + msg + " (" + file +
                             ":" + std::to_string(line) + ")");
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace codecomp
