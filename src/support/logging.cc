#include "support/logging.hh"

#include <stdexcept>

namespace codecomp {
namespace detail {

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throw rather than exit(1) so that library users (and the test
    // suite) can observe user-level errors without losing the process.
    throw std::runtime_error(std::string("fatal: ") + msg + " (" + file +
                             ":" + std::to_string(line) + ")");
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace codecomp
