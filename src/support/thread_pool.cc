#include "support/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "support/logging.hh"

namespace codecomp {

namespace {

/** True while this thread is executing a pool task. Parallel stages
 *  nest (a multi-workload fan-out whose per-program compress shards
 *  candidate enumeration); the inner stage then runs inline on the
 *  already-parallel thread instead of re-entering the pool. */
thread_local bool insidePoolTask = false;

} // namespace

ThreadPool::ThreadPool(unsigned threads)
{
    CC_ASSERT(threads >= 1, "pool needs at least one thread");
    workerCount_ = threads - 1;
    workers_.reserve(workerCount_);
    for (unsigned i = 0; i < workerCount_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::drain(Batch &batch, std::unique_lock<std::mutex> &lock)
{
    while (batch.next < batch.tasks.size()) {
        std::function<void()> task =
            std::move(batch.tasks[batch.next]);
        ++batch.next;
        lock.unlock();
        std::exception_ptr error;
        insidePoolTask = true;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        insidePoolTask = false;
        lock.lock();
        if (error && !batch.error)
            batch.error = error;
        if (--batch.unfinished == 0)
            done_.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return stopping_ ||
                   (current_ && current_->next < current_->tasks.size());
        });
        if (stopping_)
            return;
        drain(*current_, lock);
    }
}

void
ThreadPool::runBatch(std::vector<std::function<void()>> tasks)
{
    if (tasks.empty())
        return;
    if (insidePoolTask) {
        // Nested batch from inside a task: the pool is already busy
        // running the outer stage, so execute inline on this thread.
        // Same completion semantics as the pooled path: every task
        // runs, the first exception is rethrown once all are done.
        std::exception_ptr error;
        for (std::function<void()> &task : tasks) {
            try {
                task();
            } catch (...) {
                if (!error)
                    error = std::current_exception();
            }
        }
        if (error)
            std::rethrow_exception(error);
        return;
    }
    Batch batch;
    batch.tasks = std::move(tasks);
    batch.unfinished = batch.tasks.size();

    std::unique_lock<std::mutex> lock(mutex_);
    CC_ASSERT(current_ == nullptr, "nested runBatch on one pool");
    current_ = &batch;
    wake_.notify_all();
    drain(batch, lock);
    done_.wait(lock, [&batch] { return batch.unfinished == 0; });
    current_ = nullptr;
    if (batch.error)
        std::rethrow_exception(batch.error);
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    if (n == 0)
        return;
    if (threadCount() == 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    // A few chunks per thread so uneven indices still balance.
    size_t chunks = std::min<size_t>(n, threadCount() * 4u);
    size_t per = (n + chunks - 1) / chunks;
    std::vector<std::function<void()>> tasks;
    tasks.reserve(chunks);
    for (size_t begin = 0; begin < n; begin += per) {
        size_t end = std::min(n, begin + per);
        tasks.push_back([&body, begin, end] {
            for (size_t i = begin; i < end; ++i)
                body(i);
        });
    }
    runBatch(std::move(tasks));
}

namespace {

unsigned overriddenJobs = 0; //!< 0 = no override

} // namespace

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("CODECOMP_JOBS")) {
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value >= 1)
            return static_cast<unsigned>(std::min(value, 256l));
        CC_WARN("ignoring invalid CODECOMP_JOBS='", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
setGlobalJobs(unsigned jobs)
{
    overriddenJobs = std::min(jobs, 256u);
}

unsigned
globalJobs()
{
    return overriddenJobs ? overriddenJobs : defaultJobs();
}

ThreadPool &
globalPool()
{
    // The farm (and any future concurrent orchestrator) reaches the
    // global pool from several threads at once; the unique_ptr swap
    // below would otherwise be a data race and a use-after-free for
    // threads still draining the old pool.
    static std::mutex pool_mutex;
    static std::unique_ptr<ThreadPool> pool;
    std::lock_guard<std::mutex> lock(pool_mutex);
    if (!pool || pool->threadCount() != globalJobs()) {
        if (pool && pool->busy())
            CC_FATAL("cannot resize the global pool from ",
                     pool->threadCount(), " to ", globalJobs(),
                     " threads while a batch is in flight");
        pool = std::make_unique<ThreadPool>(globalJobs());
    }
    return *pool;
}

} // namespace codecomp
