/**
 * @file
 * Minimal POSIX subprocess runner with a wall-clock deadline.
 *
 * The farm's process-isolation mode (src/farm) runs each compression
 * job in a forked worker so a crash, panic, or OOM-kill in one job is
 * an observable per-job outcome instead of the death of the whole run.
 * This helper owns the fork/exec/wait machinery: spawn argv, optionally
 * redirect stdout/stderr to files, poll for exit, and on deadline
 * expiry SIGKILL the child and report TimedOut. Every outcome --
 * normal exit, signal death, timeout, or spawn failure -- is a value,
 * never an exception, so callers can build retry policies on top.
 */

#ifndef CODECOMP_SUPPORT_SUBPROCESS_HH
#define CODECOMP_SUPPORT_SUBPROCESS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace codecomp {

struct SubprocessResult
{
    enum class Outcome : uint8_t {
        Exited,      //!< child ran to completion; exitCode is valid
        Signaled,    //!< child died on a signal; signal is valid
        TimedOut,    //!< deadline expired; child was SIGKILLed
        SpawnFailed, //!< fork/exec never happened; error is valid
    };

    Outcome outcome = Outcome::SpawnFailed;
    int exitCode = -1;  //!< WEXITSTATUS when Exited
    int signal = 0;     //!< WTERMSIG when Signaled
    std::string error;  //!< strerror text when SpawnFailed
    double millis = 0.0; //!< child wall time

    bool ok() const { return outcome == Outcome::Exited && exitCode == 0; }
};

const char *subprocessOutcomeName(SubprocessResult::Outcome outcome);

struct SubprocessOptions
{
    /** Wall-clock deadline in milliseconds; 0 waits forever. */
    uint64_t timeoutMs = 0;

    /** Redirect the child's stdout/stderr to these paths (empty =
     *  inherit the parent's). */
    std::string stdoutPath;
    std::string stderrPath;
};

/**
 * Run @p argv (argv[0] is the executable path) and wait for it under
 * @p options. The child is always reaped before returning; a timed-out
 * child is SIGKILLed first, so no zombie or runaway worker survives
 * the call.
 */
SubprocessResult runSubprocess(const std::vector<std::string> &argv,
                               const SubprocessOptions &options = {});

/** Absolute path of the running executable (/proc/self/exe), or ""
 *  when the platform cannot say. */
std::string selfExecutablePath();

} // namespace codecomp

#endif // CODECOMP_SUPPORT_SUBPROCESS_HH
