/**
 * @file
 * A small reusable worker pool plus the process-wide parallelism knob.
 *
 * Every parallel stage in the system (candidate enumeration sharding,
 * multi-workload compression, benchmark suite construction) runs
 * through this pool. Work is always *deterministically decomposed*:
 * callers split their problem into an index space, the pool only
 * decides which thread evaluates which index, and callers combine
 * results by index. Combined with the deterministic merge in
 * enumerateCandidates, this is what makes compressed output
 * byte-identical for any job count.
 *
 * The job count comes from, in priority order: an explicit
 * setGlobalJobs() call (e.g. a --jobs flag), the CODECOMP_JOBS
 * environment variable, then std::thread::hardware_concurrency().
 */

#ifndef CODECOMP_SUPPORT_THREAD_POOL_HH
#define CODECOMP_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace codecomp {

/**
 * Fixed-size pool of worker threads executing batches of tasks.
 *
 * A pool of size N uses N-1 dedicated workers plus the submitting
 * thread (which drains the queue alongside them in runBatch), so
 * ThreadPool(1) degenerates to inline serial execution with zero
 * thread traffic. The first exception thrown by any task is captured
 * and rethrown on the submitting thread once the batch has drained.
 */
class ThreadPool
{
  public:
    /** Create a pool running up to @p threads tasks concurrently. */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;
    ~ThreadPool();

    /** Concurrency level (dedicated workers + the submitting thread). */
    unsigned threadCount() const { return workerCount_ + 1; }

    /** True while a batch is being drained. */
    bool
    busy()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return current_ != nullptr;
    }

    /**
     * Run every task in @p tasks and wait for all of them. The calling
     * thread participates. If any task throws, the first captured
     * exception is rethrown here after the whole batch finishes.
     */
    void runBatch(std::vector<std::function<void()>> tasks);

    /**
     * Evaluate body(i) for every i in [0, n), spread over the pool.
     * Indices are chunked contiguously; determinism of the *results*
     * is the caller's job (index-addressed output slots).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

  private:
    struct Batch
    {
        std::vector<std::function<void()>> tasks;
        size_t next = 0;      //!< next task index to claim
        size_t unfinished;    //!< tasks not yet completed
        std::exception_ptr error;
    };

    void workerLoop();
    /** Claim-and-run tasks from @p batch until none are left. */
    void drain(Batch &batch, std::unique_lock<std::mutex> &lock);

    std::mutex mutex_;
    std::condition_variable wake_;     //!< workers: new batch available
    std::condition_variable done_;     //!< submitter: batch finished
    std::vector<std::thread> workers_;
    unsigned workerCount_ = 0;
    Batch *current_ = nullptr; //!< batch being drained, if any
    bool stopping_ = false;
};

/** Pool-size default: CODECOMP_JOBS if set, else hardware threads. */
unsigned defaultJobs();

/** Override the process-wide job count (0 restores defaultJobs()). */
void setGlobalJobs(unsigned jobs);

/** The process-wide job count used by all parallel stages. */
unsigned globalJobs();

/**
 * The process-wide pool, sized to globalJobs(). Safe to call from any
 * thread: access is serialized internally. Rebuilt when the job count
 * changed while the pool is idle; a resize attempted while a batch is
 * in flight is a catchable fatal (call setGlobalJobs before, not
 * during, a parallel stage).
 */
ThreadPool &globalPool();

/**
 * Evaluate fn(i) for i in [0, n) on the global pool and return the
 * results in index order, so output is independent of scheduling.
 */
template <typename R>
std::vector<R>
parallelMap(size_t n, const std::function<R(size_t)> &fn)
{
    std::vector<R> results(n);
    globalPool().parallelFor(
        n, [&results, &fn](size_t i) { results[i] = fn(i); });
    return results;
}

} // namespace codecomp

#endif // CODECOMP_SUPPORT_THREAD_POOL_HH
