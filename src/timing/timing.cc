#include "timing/timing.hh"

#include "decompress/cpu.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace codecomp::timing {

std::string
timingConfigError(const TimingConfig &config)
{
    if (config.frontendWidth < 1 || config.frontendWidth > 16)
        return "front-end width must be 1..16 (got " +
               std::to_string(config.frontendWidth) + ")";
    std::string cache_error = cache::cacheConfigError(config.icache);
    if (!cache_error.empty())
        return "icache: " + cache_error;
    if (config.missPenaltyCycles > 10000)
        return "miss penalty must be <= 10000 cycles";
    if (config.memoryCyclesPerWord > 10000)
        return "memory cycles per word must be <= 10000";
    if (config.expansionCyclesPerWord > 10000)
        return "expansion cycles per word must be <= 10000";
    if (config.redirectPenaltyCycles > 10000)
        return "redirect penalty must be <= 10000 cycles";
    if (config.decodedCacheRanks > 8192)
        return "decoded-cache ranks must be <= 8192 (the largest "
               "dictionary)";
    if (config.hasL2()) {
        std::string l2_error = cache::cacheConfigError(config.l2);
        if (!l2_error.empty())
            return "l2: " + l2_error;
        if (config.l2.capacityBytes < config.icache.capacityBytes)
            return "l2 capacity " +
                   std::to_string(config.l2.capacityBytes) +
                   " must be at least the L1 capacity " +
                   std::to_string(config.icache.capacityBytes) +
                   " (the hierarchy is inclusive)";
        if (config.l2.lineBytes < config.icache.lineBytes)
            return "l2 line " + std::to_string(config.l2.lineBytes) +
                   " must be at least the L1 line " +
                   std::to_string(config.icache.lineBytes);
        if (config.l2HitPenaltyCycles > 10000)
            return "l2 hit penalty must be <= 10000 cycles";
        if (config.l2CyclesPerWord > 10000)
            return "l2 cycles per word must be <= 10000";
        if (config.l2FillCycles() > config.lineFillCycles())
            return "an L2 hit (" +
                   std::to_string(config.l2FillCycles()) +
                   " cycles) must not cost more than a memory fill (" +
                   std::to_string(config.lineFillCycles()) + " cycles)";
    }
    return "";
}

void
validateTimingConfig(const TimingConfig &config)
{
    std::string error = timingConfigError(config);
    if (!error.empty())
        CC_FATAL("bad timing config: ", error);
}

namespace {

// Validate before the member I-cache is built, so the user sees the
// timing-config error rather than a bare cache one.
const TimingConfig &
validated(const TimingConfig &config)
{
    validateTimingConfig(config);
    return config;
}

} // namespace

FetchTimer::FetchTimer(const TimingConfig &config)
    : config_(validated(config)), icache_(config.icache)
{
    if (config_.hasL2())
        l2_.emplace(config_.l2);
}

void
FetchTimer::onFetch(const FetchEvent &event)
{
    ++items_;
    instructions_ += event.retired;
    fetchedBytes_ += event.bytes;
    // Walk the L1 lines of the access explicitly (same line set and
    // stats as ICache::access) so each missed line can be attributed
    // to the level that serves the refill.
    uint32_t line_bytes = config_.icache.lineBytes;
    uint32_t first_line = event.addr / line_bytes;
    uint32_t last_line =
        (event.addr + (event.bytes ? event.bytes - 1 : 0)) / line_bytes;
    for (uint32_t line = first_line; line <= last_line; ++line) {
        if (icache_.touch(line * line_bytes))
            continue;
        if (!l2_) {
            stallIcacheMiss_ += config_.lineFillCycles();
        } else if (l2_->touch(line * line_bytes)) {
            stallIcacheMiss_ += config_.l2FillCycles();
        } else {
            // Memory refills both levels; charged once, at L1-line
            // granularity (critical-line-first for wider L2 lines).
            stallL2Miss_ += config_.lineFillCycles();
        }
    }
    if (event.isCodeword && event.retired > 1) {
        // A pre-expanded entry streams from the decode cache in the
        // fetch slot itself; only uncached ranks pay the expander.
        if (event.rank < config_.decodedCacheRanks)
            ++expansionCacheHits_;
        else
            stallExpansion_ += static_cast<uint64_t>(
                                   config_.expansionCyclesPerWord) *
                               (event.retired - 1);
    }
    if (event.taken)
        stallRedirect_ += config_.redirectPenaltyCycles;
}

void
FetchTimer::reset()
{
    icache_.reset();
    if (l2_)
        l2_->reset();
    instructions_ = 0;
    items_ = 0;
    fetchedBytes_ = 0;
    stallIcacheMiss_ = 0;
    stallL2Miss_ = 0;
    stallExpansion_ = 0;
    stallRedirect_ = 0;
    expansionCacheHits_ = 0;
}

TimingReport
FetchTimer::report() const
{
    TimingReport report;
    report.instructions = instructions_;
    report.items = items_;
    report.fetchedBytes = fetchedBytes_;
    report.baseCycles =
        (instructions_ + config_.frontendWidth - 1) / config_.frontendWidth;
    report.stallIcacheMiss = stallIcacheMiss_;
    report.stallL2Miss = stallL2Miss_;
    report.stallExpansion = stallExpansion_;
    report.stallRedirect = stallRedirect_;
    report.expansionCacheHits = expansionCacheHits_;
    report.icache = icache_.stats();
    if (l2_)
        report.l2 = l2_->stats();
    return report;
}

std::string
TimingReport::toJson() const
{
    JsonWriter json;
    json.beginObject()
        .member("instructions", instructions)
        .member("items", items)
        .member("fetched_bytes", fetchedBytes)
        .member("cycles", cycles())
        .member("cpi", cpi())
        .member("base_cycles", baseCycles)
        .member("stall_icache_miss", stallIcacheMiss)
        .member("stall_l2_miss", stallL2Miss)
        .member("stall_expansion", stallExpansion)
        .member("stall_redirect", stallRedirect)
        .member("expansion_cache_hits", expansionCacheHits);
    json.key("icache")
        .beginObject()
        .member("accesses", icache.accesses)
        .member("misses", icache.misses)
        .member("line_fills", icache.lineFills)
        .member("evictions", icache.evictions)
        .member("miss_rate", icache.missRate())
        .endObject();
    json.key("l2")
        .beginObject()
        .member("accesses", l2.accesses)
        .member("misses", l2.misses)
        .member("line_fills", l2.lineFills)
        .member("evictions", l2.evictions)
        .member("miss_rate", l2.missRate())
        .endObject();
    json.endObject();
    return json.str();
}

std::vector<uint64_t>
profileExecutionCounts(const Program &program, uint64_t max_steps)
{
    std::vector<uint64_t> counts(program.text.size(), 0);
    Cpu cpu(program);
    cpu.setFetchHook([&counts, &program](const FetchEvent &event) {
        ++counts[program.indexOfAddr(event.addr)];
    });
    cpu.run(max_steps);
    return counts;
}

} // namespace codecomp::timing
