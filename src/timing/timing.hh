/**
 * @file
 * Cycle-approximate timing model: turns the fetch/retire streams of
 * both processors into cycles, so compression can be evaluated on the
 * size-vs-speed plane instead of static size alone (the paper stops at
 * "Reducing program size is one way to reduce instruction cache misses
 * and achieve higher performance [Chen97b]"; this subsystem puts a
 * number on it).
 *
 * The model is additive, in-order, and deliberately simple (DESIGN.md
 * section 9): a front end that retires up to `frontendWidth`
 * instructions per cycle, an I-cache whose line fills stall the front
 * end (optionally backed by a second-level cache, TimingConfig::l2),
 * a dictionary expander that streams entry words at a fixed rate,
 * and a fixed redirect penalty per taken branch. Cycles decompose
 * exactly into base + icache-miss + l2-miss + expansion + redirect
 * stalls, so a
 * TimingReport is both a total and an attribution. Everything is
 * deterministic: the same image and config produce bit-identical
 * reports on every run and every build.
 */

#ifndef CODECOMP_TIMING_TIMING_HH
#define CODECOMP_TIMING_TIMING_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/icache.hh"
#include "decompress/fetch.hh"
#include "program/program.hh"

namespace codecomp::timing {

/** Machine parameters of the model; see timingConfigError for the
 *  validity rules. */
struct TimingConfig
{
    /** Instructions retired per cycle when nothing stalls (1..16). */
    uint32_t frontendWidth = 1;

    /** I-cache geometry; validated via cache::cacheConfigError. */
    cache::CacheConfig icache{2048, 32, 1};

    /** Lead-off latency of one line fill, cycles. */
    uint32_t missPenaltyCycles = 10;

    /** Streaming cost of a fill: cycles per 4-byte word of the line,
     *  so a fill costs missPenaltyCycles + lineBytes/4 * this. */
    uint32_t memoryCyclesPerWord = 1;

    /** Dictionary-expansion cost: cycles per expanded word beyond the
     *  first (the first word issues in the item's own retire slot). */
    uint32_t expansionCyclesPerWord = 1;

    /** Front-end redirect cost per taken branch, cycles. */
    uint32_t redirectPenaltyCycles = 2;

    /** Capacity of the modeled pre-expanded decode cache, in dictionary
     *  ranks: codeword items with rank < decodedCacheRanks stream their
     *  entry from pre-decoded storage beside the fetch unit and incur
     *  no expansion stall. Ranks are frequency-ordered, so "the first N
     *  ranks" is exactly "the N hottest entries", and the set is fixed
     *  per image -- images are immutable post-load, so the modeled
     *  cache needs no invalidation or replacement. 0 (default) models
     *  no cache: every expansion pays expansionCyclesPerWord. */
    uint32_t decodedCacheRanks = 0;

    /** Optional second-level I-cache geometry. Zero capacity (the
     *  default) disables the L2 and the model is bit-identical to the
     *  single-level one. When enabled the hierarchy is inclusive: an L1
     *  miss probes the L2 at L1-line granularity; an L2 hit refills the
     *  L1 line at l2FillCycles(), an L2 miss goes to memory at
     *  lineFillCycles() (critical-line-first, so the memory fill is
     *  charged once at L1-line granularity). Validation requires the L2
     *  to be at least as large as the L1, its line at least the L1
     *  line, and an L2 hit to cost no more than a memory fill -- which
     *  makes "adding an L2 never increases cycles" an exact property,
     *  not a tendency: the L1 miss pattern is independent of the L2, so
     *  every miss is charged at most its single-level cost. */
    cache::CacheConfig l2{0, 32, 1};

    /** Lead-off latency of an L1 refill served by the L2, cycles. */
    uint32_t l2HitPenaltyCycles = 4;

    /** Streaming cost of an L2-sourced refill: cycles per 4-byte word
     *  of the L1 line being filled. */
    uint32_t l2CyclesPerWord = 1;

    /** True when a second cache level is configured. */
    bool hasL2() const { return l2.capacityBytes != 0; }

    /** Total stall charged per missed line. */
    uint64_t
    lineFillCycles() const
    {
        return missPenaltyCycles +
               static_cast<uint64_t>(memoryCyclesPerWord) *
                   (icache.lineBytes / 4);
    }

    /** Total stall charged per L1 refill that hits in the L2. */
    uint64_t
    l2FillCycles() const
    {
        return l2HitPenaltyCycles +
               static_cast<uint64_t>(l2CyclesPerWord) *
                   (icache.lineBytes / 4);
    }
};

/**
 * Human-readable reason @p config cannot drive the model, or "" if it
 * is valid. FetchTimer raises a catchable fatal on a non-empty answer;
 * CLI front ends (cctime) check it first so the user gets a usage
 * error, not an abort.
 */
std::string timingConfigError(const TimingConfig &config);

/** CC_FATAL (catchable) unless timingConfigError(config) is empty. */
void validateTimingConfig(const TimingConfig &config);

/** The model's verdict on one run: cycles plus their attribution. */
struct TimingReport
{
    uint64_t instructions = 0; //!< architectural instructions retired
    uint64_t items = 0;        //!< fetch-unit items consumed
    uint64_t fetchedBytes = 0; //!< bytes moved by the fetch unit

    uint64_t baseCycles = 0;        //!< ceil(instructions / width)
    uint64_t stallIcacheMiss = 0;   //!< L1 refills (from L2 or memory)
    uint64_t stallL2Miss = 0;       //!< memory fills behind an L2 miss
    uint64_t stallExpansion = 0;    //!< dictionary-expansion stalls
    uint64_t stallRedirect = 0;     //!< taken-branch redirects

    /** Multi-word codeword items whose expansion stall was absorbed by
     *  the pre-expanded decode cache (decodedCacheRanks). */
    uint64_t expansionCacheHits = 0;

    cache::CacheStats icache;  //!< accesses/misses/fills/evictions
    cache::CacheStats l2;      //!< all zero when no L2 is configured

    uint64_t
    cycles() const
    {
        return baseCycles + stallIcacheMiss + stallL2Miss +
               stallExpansion + stallRedirect;
    }

    double
    cpi() const
    {
        return instructions == 0
                   ? 0.0
                   : static_cast<double>(cycles()) / instructions;
    }

    /** Serialize every field (support/json); bit-identical for equal
     *  reports, so determinism tests can compare strings. */
    std::string toJson() const;

    bool operator==(const TimingReport &) const = default;
};

/**
 * Consumes a processor's fetch stream (fetch.hh) and charges cycles.
 * Wire it up with `cpu.setFetchHook(timer.hook())`, run the program,
 * then read report(). Native 4-byte fetches and variable-size codeword
 * items go through the same accounting, so compressed code's density
 * advantage (fewer line fills) and its expansion cost are both priced.
 */
class FetchTimer
{
  public:
    /** Catchable fatal if @p config is invalid (timingConfigError). */
    explicit FetchTimer(const TimingConfig &config);

    /** Charge one fetch-unit item. */
    void onFetch(const FetchEvent &event);

    /** A hook bound to this timer, for Cpu/CompressedCpu::setFetchHook.
     *  The timer must outlive the processor's use of the hook. */
    FetchHook
    hook()
    {
        return [this](const FetchEvent &event) { onFetch(event); };
    }

    /** Forget everything, including cache contents. */
    void reset();

    TimingReport report() const;

    const TimingConfig &config() const { return config_; }
    const cache::ICache &icache() const { return icache_; }

    /** The L2 model, or nullptr when none is configured. */
    const cache::ICache *l2() const { return l2_ ? &*l2_ : nullptr; }

  private:
    TimingConfig config_;
    cache::ICache icache_;
    std::optional<cache::ICache> l2_;
    uint64_t instructions_ = 0;
    uint64_t items_ = 0;
    uint64_t fetchedBytes_ = 0;
    uint64_t stallIcacheMiss_ = 0;
    uint64_t stallL2Miss_ = 0;
    uint64_t stallExpansion_ = 0;
    uint64_t stallRedirect_ = 0;
    uint64_t expansionCacheHits_ = 0;
};

/**
 * Per-instruction execution counts from a profiling run of the plain
 * processor (index = original instruction index). Feeds the
 * traffic-weighted selection strategy (compress/strategy.hh).
 */
std::vector<uint64_t> profileExecutionCounts(
    const Program &program, uint64_t max_steps = 1ull << 28);

} // namespace codecomp::timing

#endif // CODECOMP_TIMING_TIMING_HH
