#include "verify/fault.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "compress/objfile.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/engine.hh"
#include "decompress/fault.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace codecomp::verify {

namespace {

constexpr uint32_t noIndex = UINT32_MAX;

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/** Execution profile of a pristine image: which item boundaries ran,
 *  and which items ever redirected control (taken branches). */
struct Profile
{
    std::vector<uint32_t> executed;   //!< sorted item nibble offsets
    std::vector<uint32_t> redirected; //!< sorted; subset of executed
};

Profile
profileRun(const compress::CompressedImage &image, uint64_t max_steps)
{
    CompressedCpu cpu(image);
    const DecompressionEngine &engine = cpu.engine();
    std::set<uint32_t> executed, redirected;
    uint32_t prev_addr = noIndex, prev_next = 0;
    uint64_t steps = 0;
    while (!cpu.machine().halted() && steps++ < max_steps) {
        uint32_t pc_nibble =
            cpu.pc() - compress::CompressedImage::nibbleBase;
        executed.insert(pc_nibble);
        if (prev_addr != noIndex && pc_nibble != prev_next)
            redirected.insert(prev_addr);
        const DecodedItem &item = engine.itemAt(pc_nibble);
        prev_addr = pc_nibble;
        prev_next = pc_nibble + item.nibbles;
        cpu.step();
    }
    CC_ASSERT(cpu.machine().halted(),
              "fault-injection profiling run did not terminate");
    Profile profile;
    profile.executed.assign(executed.begin(), executed.end());
    profile.redirected.assign(redirected.begin(), redirected.end());
    return profile;
}

/** Per-item original-index map and stub membership, as in the lockstep
 *  verifier: unmapped items are far-branch stub continuations and the
 *  mapped item before such a run is the (synthetic) stub head. */
void
classifyItems(const DecompressionEngine &engine,
              const compress::CompressedImage &image,
              std::vector<uint32_t> &orig_of, std::vector<bool> &is_stub)
{
    const std::vector<DecodedItem> &items = engine.items();
    orig_of.assign(items.size(), noIndex);
    for (const auto &[orig, nibble] : image.addrMap)
        orig_of[engine.itemIndexAt(nibble)] = orig;
    is_stub.assign(items.size(), false);
    uint32_t head = noIndex;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (orig_of[i] != noIndex) {
            head = i;
        } else {
            is_stub[i] = true;
            if (head != noIndex)
                is_stub[head] = true;
        }
    }
}

/** Re-emit the whole item sequence, with per-item overrides applied by
 *  the caller through @p rank_of and @p word_of. Stream size must come
 *  out identical, or the address map and branches would break. */
template <typename RankOf, typename WordOf>
void
rebuildStream(compress::CompressedImage &image,
              const std::vector<DecodedItem> &items, RankOf rank_of,
              WordOf word_of)
{
    NibbleWriter writer;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (items[i].isCodeword)
            compress::emitCodeword(writer, image.scheme, rank_of(i));
        else
            compress::emitInstruction(writer, image.scheme, word_of(i));
    }
    CC_ASSERT(writer.nibbleCount() == image.textNibbles,
              "fault mutation changed the stream size");
    image.text = writer.bytes();
}

/** Register whose corruption the mutated instruction should target:
 *  prefer the register the original instruction writes, and never use
 *  r2 (stub scratch, excluded from comparison) or r0 (often read as a
 *  literal zero). */
uint8_t
corruptionTarget(const isa::Inst &inst)
{
    uint8_t reg;
    switch (inst.op) {
      case isa::Op::Rlwinm:
      case isa::Op::Srawi:
        reg = inst.ra;
        break;
      case isa::Op::Stw:
      case isa::Op::Stb:
      case isa::Op::Sth:
      case isa::Op::Cmp:
      case isa::Op::Cmpl:
      case isa::Op::Cmpi:
      case isa::Op::Cmpli:
      case isa::Op::Mtspr:
      case isa::Op::Sc:
      case isa::Op::B:
      case isa::Op::Bc:
      case isa::Op::Bclr:
      case isa::Op::Bcctr:
        reg = 3;
        break;
      default:
        reg = inst.rt;
        break;
    }
    if (reg == 0 || reg == 2)
        reg = 3;
    return reg;
}

FaultInjection
injectDictEntryWord(const compress::CompressedImage &image,
                    const DecompressionEngine &engine,
                    const Profile &profile, Rng &rng)
{
    std::set<uint32_t> rank_set;
    for (uint32_t addr : profile.executed) {
        const DecodedItem &item = engine.itemAt(addr);
        if (item.isCodeword)
            rank_set.insert(item.rank);
    }
    CC_ASSERT(!rank_set.empty(),
              "no codeword executed; cannot inject a dictionary fault");
    std::vector<uint32_t> ranks(rank_set.begin(), rank_set.end());
    uint32_t rank = ranks[rng.below(ranks.size())];

    FaultInjection fault{FaultKind::DictEntryWord, image, {}};
    isa::Word original = fault.image.entriesByRank[rank][0];
    isa::Inst victim = isa::decode(original);
    isa::Inst corrupt;
    corrupt.op = isa::Op::Addis;
    corrupt.rt = corruptionTarget(victim);
    corrupt.ra = corrupt.rt;
    corrupt.imm = 0x0100;
    if (isa::encode(corrupt) == original)
        corrupt.imm = 0x0200;
    fault.image.entriesByRank[rank][0] = isa::encode(corrupt);
    fault.description =
        "dictionary rank " + std::to_string(rank) + " slot 0: " +
        isa::disassemble(victim, 0) + " -> " + isa::disassemble(corrupt, 0);
    return fault;
}

FaultInjection
injectCodewordRank(const compress::CompressedImage &image,
                   const DecompressionEngine &engine,
                   const Profile &profile, Rng &rng)
{
    std::vector<uint32_t> executed_codewords;
    for (uint32_t addr : profile.executed) {
        if (engine.itemAt(addr).isCodeword)
            executed_codewords.push_back(addr);
    }
    CC_ASSERT(!executed_codewords.empty(),
              "no codeword executed; cannot inject a rank fault");

    // Pick an executed codeword whose width class holds another rank;
    // a same-width swap keeps the stream layout bit-identical in size.
    uint32_t num_ranks =
        static_cast<uint32_t>(image.entriesByRank.size());
    for (uint64_t attempt = 0; attempt < 64; ++attempt) {
        uint32_t victim_addr =
            executed_codewords[rng.below(executed_codewords.size())];
        uint32_t victim_index = engine.itemIndexAt(victim_addr);
        uint32_t old_rank = engine.items()[victim_index].rank;
        unsigned width = compress::codewordNibbles(image.scheme, old_rank);
        std::vector<uint32_t> candidates;
        for (uint32_t r = 0; r < num_ranks; ++r) {
            if (r != old_rank &&
                compress::codewordNibbles(image.scheme, r) == width) {
                candidates.push_back(r);
            }
        }
        if (candidates.empty())
            continue;
        uint32_t new_rank = candidates[rng.below(candidates.size())];

        FaultInjection fault{FaultKind::CodewordRank, image, {}};
        const std::vector<DecodedItem> &items = engine.items();
        rebuildStream(
            fault.image, items,
            [&](uint32_t i) {
                return i == victim_index ? new_rank : items[i].rank;
            },
            [&](uint32_t i) { return items[i].word; });
        fault.description = "codeword at nibble " + hex32(victim_addr) +
                            ": rank " + std::to_string(old_rank) +
                            " -> rank " + std::to_string(new_rank) +
                            " (same width)";
        return fault;
    }
    CC_PANIC("no same-width rank swap available for any executed codeword");
}

FaultInjection
injectBranchDisp(const compress::CompressedImage &image,
                 const DecompressionEngine &engine, const Profile &profile,
                 Rng &rng)
{
    std::vector<uint32_t> orig_of;
    std::vector<bool> is_stub;
    classifyItems(engine, image, orig_of, is_stub);
    const std::vector<DecodedItem> &items = engine.items();

    // Taken relative branches outside stub groups: retargeting one is
    // guaranteed to change the control flow of the verified run.
    std::vector<uint32_t> candidates;
    for (uint32_t addr : profile.redirected) {
        uint32_t index = engine.itemIndexAt(addr);
        if (is_stub[index] || items[index].isCodeword)
            continue;
        if (isa::decode(items[index].word).isRelativeBranch())
            candidates.push_back(index);
    }
    CC_ASSERT(!candidates.empty(),
              "no taken relative branch executed; cannot inject a "
              "displacement fault");
    uint32_t victim_index = candidates[rng.below(candidates.size())];
    const DecodedItem &victim = items[victim_index];
    isa::Inst inst = isa::decode(victim.word);
    unsigned disp_bits = inst.op == isa::Op::B ? 24 : 14;
    unsigned unit = compress::schemeParams(image.scheme).unitNibbles;
    int64_t old_target =
        static_cast<int64_t>(victim.nibbleAddr) +
        static_cast<int64_t>(inst.disp) * unit;

    // Retarget to the nearest other mapped, non-stub item boundary the
    // displacement field can reach; item-boundary deltas are unit
    // aligned by construction.
    uint32_t best_index = noIndex;
    int64_t best_distance = 0;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (orig_of[i] == noIndex || is_stub[i])
            continue;
        int64_t target = items[i].nibbleAddr;
        if (target == old_target)
            continue;
        int64_t disp =
            (target - static_cast<int64_t>(victim.nibbleAddr)) / unit;
        if (!isa::fitsSigned(disp, disp_bits))
            continue;
        int64_t distance = target > old_target ? target - old_target
                                               : old_target - target;
        if (best_index == noIndex || distance < best_distance) {
            best_index = i;
            best_distance = distance;
        }
    }
    CC_ASSERT(best_index != noIndex,
              "no reachable alternative branch target");
    isa::Inst mutated = inst;
    mutated.disp = static_cast<int32_t>(
        (static_cast<int64_t>(items[best_index].nibbleAddr) -
         static_cast<int64_t>(victim.nibbleAddr)) /
        unit);

    FaultInjection fault{FaultKind::BranchDisp, image, {}};
    rebuildStream(
        fault.image, items,
        [&](uint32_t i) { return items[i].rank; },
        [&](uint32_t i) {
            return i == victim_index ? isa::encode(mutated)
                                     : items[i].word;
        });
    fault.description =
        "branch at nibble " + hex32(victim.nibbleAddr) + ": disp " +
        std::to_string(inst.disp) + " -> " + std::to_string(mutated.disp) +
        " (retargeted to nibble " + hex32(items[best_index].nibbleAddr) +
        ")";
    return fault;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DictEntryWord:
        return "dict-entry-word";
      case FaultKind::CodewordRank:
        return "codeword-rank";
      case FaultKind::BranchDisp:
        return "branch-disp";
    }
    return "unknown";
}

FaultInjection
injectFault(const Program &program, const compress::CompressedImage &image,
            FaultKind kind, uint64_t seed)
{
    (void)program;
    DecompressionEngine engine(image);
    Profile profile = profileRun(image, CompressedCpu::defaultMaxSteps);
    Rng rng(seed);
    switch (kind) {
      case FaultKind::DictEntryWord:
        return injectDictEntryWord(image, engine, profile, rng);
      case FaultKind::CodewordRank:
        return injectCodewordRank(image, engine, profile, rng);
      case FaultKind::BranchDisp:
        return injectBranchDisp(image, engine, profile, rng);
    }
    CC_PANIC("unknown fault kind");
}

// ------------------------- corruption campaign -----------------------

const char *
corruptionKindName(CorruptionKind kind)
{
    switch (kind) {
      case CorruptionKind::BitFlip:
        return "bit-flip";
      case CorruptionKind::Truncate:
        return "truncate";
      case CorruptionKind::Splice:
        return "splice";
      case CorruptionKind::LengthLie:
        return "length-lie";
    }
    return "unknown";
}

const char *
mutantOutcomeName(MutantOutcome outcome)
{
    switch (outcome) {
      case MutantOutcome::LoadRejected:
        return "load-rejected";
      case MutantOutcome::Trapped:
        return "trapped";
      case MutantOutcome::RanIdentical:
        return "ran-identical";
      case MutantOutcome::SilentDivergence:
        return "silent-divergence";
      case MutantOutcome::Panicked:
        return "panicked";
    }
    return "unknown";
}

std::vector<uint8_t>
corruptBytes(const std::vector<uint8_t> &bytes, CorruptionKind kind,
             Rng &rng, std::string &description)
{
    CC_ASSERT(bytes.size() >= 16, "serialized image implausibly small");
    std::vector<uint8_t> out = bytes;
    switch (kind) {
      case CorruptionKind::BitFlip: {
        size_t pos = rng.below(out.size());
        unsigned bit = static_cast<unsigned>(rng.below(8));
        out[pos] ^= static_cast<uint8_t>(1u << bit);
        description = "flip bit " + std::to_string(bit) + " of byte " +
                      std::to_string(pos);
        break;
      }
      case CorruptionKind::Truncate: {
        size_t size = rng.below(out.size());
        out.resize(size);
        description = "truncate to " + std::to_string(size) + " of " +
                      std::to_string(bytes.size()) + " bytes";
        break;
      }
      case CorruptionKind::Splice: {
        size_t len = 1 + rng.below(std::min<size_t>(16, out.size()));
        size_t src = rng.below(out.size() - len + 1);
        size_t dst = rng.below(out.size() - len + 1);
        std::vector<uint8_t> span(out.begin() + static_cast<long>(src),
                                  out.begin() + static_cast<long>(src + len));
        std::copy(span.begin(), span.end(),
                  out.begin() + static_cast<long>(dst));
        description = "splice " + std::to_string(len) + " bytes from " +
                      std::to_string(src) + " over " + std::to_string(dst);
        break;
      }
      case CorruptionKind::LengthLie: {
        size_t pos = rng.below(out.size() - 3);
        uint32_t value = static_cast<uint32_t>(rng.next());
        for (unsigned i = 0; i < 4; ++i)
            out[pos + i] = static_cast<uint8_t>(value >> (24 - 8 * i));
        description = "overwrite 4 bytes at " + std::to_string(pos) +
                      " with " + hex32(value);
        break;
      }
    }
    return out;
}

namespace {

/** Execute an already-loaded mutant, with panics trapped, and compare
 *  against the pristine run. */
MutantReport
runMutant(const compress::CompressedImage &image, const ExecResult &expected,
          uint64_t max_steps, std::string description)
{
    MutantReport report{MutantOutcome::RanIdentical, std::move(description),
                        {}};
    try {
        PanicTrap trap;
        ExecResult result = runCompressed(image, max_steps);
        if (result == expected) {
            report.outcome = MutantOutcome::RanIdentical;
        } else {
            report.outcome = MutantOutcome::SilentDivergence;
            report.detail =
                "exit " + std::to_string(result.exitCode) + " vs " +
                std::to_string(expected.exitCode) + ", " +
                std::to_string(result.instCount) + " vs " +
                std::to_string(expected.instCount) + " insts, output " +
                (result.output == expected.output ? "equal" : "differs");
        }
    } catch (const MachineCheckError &error) {
        report.outcome = MutantOutcome::Trapped;
        report.detail = error.what();
    } catch (const PanicError &error) {
        report.outcome = MutantOutcome::Panicked;
        report.detail = error.what();
    } catch (const std::runtime_error &error) {
        // CC_FATAL: the watchdog step budget; part of the fault model.
        report.outcome = MutantOutcome::Trapped;
        report.detail = error.what();
    }
    return report;
}

} // namespace

MutantReport
classifyMutantBytes(const std::vector<uint8_t> &mutant,
                    const ExecResult &expected, uint64_t max_steps,
                    std::string description)
{
    Result<compress::CompressedImage> loaded = tryLoadImage(mutant);
    if (!loaded.ok())
        return {MutantOutcome::LoadRejected, std::move(description),
                loaded.error().message()};
    return runMutant(loaded.value(), expected, max_steps,
                     std::move(description));
}

MutantReport
classifyMutantImage(const compress::CompressedImage &mutant,
                    const ExecResult &expected, uint64_t max_steps,
                    std::string description)
{
    if (std::optional<LoadError> error = validateImage(mutant))
        return {MutantOutcome::LoadRejected, std::move(description),
                error->message()};
    return runMutant(mutant, expected, max_steps, std::move(description));
}

std::vector<StructuralMutant>
structuralMutants(const Program &program,
                  const compress::CompressedImage &image)
{
    std::vector<StructuralMutant> mutants;
    auto add = [&mutants, &image](std::string description) ->
        compress::CompressedImage & {
        mutants.push_back({image, std::move(description)});
        return mutants.back().image;
    };

    if (!image.entriesByRank.empty()) {
        add("dictionary rank 0 slot 0 zeroed (illegal word)")
            .entriesByRank[0][0] = 0;
        // Dropping the last entry leaves any codeword of that rank
        // dangling; the validator must notice before the engine would.
        add("last dictionary entry removed").entriesByRank.pop_back();
    }

    add("entry point moved past the end of the stream").entryPointNibble =
        static_cast<uint32_t>(image.textNibbles);

    add("nibble count inflated past the byte stream").textNibbles += 2;

    if (image.textNibbles >= 4) {
        compress::CompressedImage &truncated =
            add("stream truncated by one byte");
        truncated.textNibbles -= 2;
        truncated.text.resize((truncated.textNibbles + 1) / 2);
    }

    // Jump-table slots hold absolute nibble code pointers; the loader
    // cannot know which .data words those are (relocations are not part
    // of the image), so a corrupted pointer must surface as a machine
    // check at the indirect branch that consumes it.
    size_t reloc_count = std::min<size_t>(program.codeRelocs.size(), 4);
    for (size_t i = 0; i < reloc_count; ++i) {
        const CodeReloc &reloc = program.codeRelocs[i];
        CC_ASSERT(static_cast<uint64_t>(reloc.dataOffset) + 4 <=
                      image.data.size(),
                  "reloc outside the image .data");
        uint32_t bogus = compress::CompressedImage::nibbleBase +
                         static_cast<uint32_t>(image.textNibbles) + 1 +
                         static_cast<uint32_t>(i);
        compress::CompressedImage &corrupted =
            add("jump-table slot at .data+" +
                std::to_string(reloc.dataOffset) +
                " redirected past the compressed text");
        for (unsigned b = 0; b < 4; ++b)
            corrupted.data[reloc.dataOffset + b] =
                static_cast<uint8_t>(bogus >> (24 - 8 * b));
    }
    if (reloc_count > 0) {
        const CodeReloc &reloc = program.codeRelocs[0];
        compress::CompressedImage &corrupted =
            add("jump-table slot at .data+" +
                std::to_string(reloc.dataOffset) +
                " redirected below the text base");
        uint32_t bogus = compress::CompressedImage::nibbleBase - 4;
        for (unsigned b = 0; b < 4; ++b)
            corrupted.data[reloc.dataOffset + b] =
                static_cast<uint8_t>(bogus >> (24 - 8 * b));
    }
    return mutants;
}

CorruptionCampaign
runCorruptionCampaign(const Program &program,
                      const compress::CompressedImage &image,
                      uint64_t count, uint64_t seed, uint64_t max_steps)
{
    CorruptionCampaign campaign;
    auto tally = [&campaign](MutantReport report) {
        ++campaign.total;
        switch (report.outcome) {
          case MutantOutcome::LoadRejected:
            ++campaign.loadRejected;
            break;
          case MutantOutcome::Trapped:
            ++campaign.trapped;
            break;
          case MutantOutcome::RanIdentical:
            ++campaign.ranIdentical;
            break;
          case MutantOutcome::SilentDivergence:
          case MutantOutcome::Panicked:
            campaign.failures.push_back(std::move(report));
            break;
        }
    };

    ExecResult expected = runCompressed(image, max_steps);
    std::vector<uint8_t> bytes = saveImage(image);
    constexpr CorruptionKind kinds[] = {
        CorruptionKind::BitFlip, CorruptionKind::Truncate,
        CorruptionKind::Splice, CorruptionKind::LengthLie};
    Rng rng(seed);
    for (uint64_t i = 0; i < count; ++i) {
        CorruptionKind kind = kinds[i % 4];
        std::string description;
        std::vector<uint8_t> mutant =
            corruptBytes(bytes, kind, rng, description);
        tally(classifyMutantBytes(
            mutant, expected, max_steps,
            std::string(corruptionKindName(kind)) + ": " + description));
    }
    for (StructuralMutant &mutant : structuralMutants(program, image))
        tally(classifyMutantImage(mutant.image, expected, max_steps,
                                  std::move(mutant.description)));
    return campaign;
}

} // namespace codecomp::verify
