#include "verify/fault.hh"

#include <algorithm>
#include <set>
#include <vector>

#include "decompress/compressed_cpu.hh"
#include "decompress/engine.hh"
#include "isa/disasm.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace codecomp::verify {

namespace {

constexpr uint32_t noIndex = UINT32_MAX;

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/** Execution profile of a pristine image: which item boundaries ran,
 *  and which items ever redirected control (taken branches). */
struct Profile
{
    std::vector<uint32_t> executed;   //!< sorted item nibble offsets
    std::vector<uint32_t> redirected; //!< sorted; subset of executed
};

Profile
profileRun(const compress::CompressedImage &image, uint64_t max_steps)
{
    CompressedCpu cpu(image);
    const DecompressionEngine &engine = cpu.engine();
    std::set<uint32_t> executed, redirected;
    uint32_t prev_addr = noIndex, prev_next = 0;
    uint64_t steps = 0;
    while (!cpu.machine().halted() && steps++ < max_steps) {
        uint32_t pc_nibble =
            cpu.pc() - compress::CompressedImage::nibbleBase;
        executed.insert(pc_nibble);
        if (prev_addr != noIndex && pc_nibble != prev_next)
            redirected.insert(prev_addr);
        const DecodedItem &item = engine.itemAt(pc_nibble);
        prev_addr = pc_nibble;
        prev_next = pc_nibble + item.nibbles;
        cpu.step();
    }
    CC_ASSERT(cpu.machine().halted(),
              "fault-injection profiling run did not terminate");
    Profile profile;
    profile.executed.assign(executed.begin(), executed.end());
    profile.redirected.assign(redirected.begin(), redirected.end());
    return profile;
}

/** Per-item original-index map and stub membership, as in the lockstep
 *  verifier: unmapped items are far-branch stub continuations and the
 *  mapped item before such a run is the (synthetic) stub head. */
void
classifyItems(const DecompressionEngine &engine,
              const compress::CompressedImage &image,
              std::vector<uint32_t> &orig_of, std::vector<bool> &is_stub)
{
    const std::vector<DecodedItem> &items = engine.items();
    orig_of.assign(items.size(), noIndex);
    for (const auto &[orig, nibble] : image.addrMap)
        orig_of[engine.itemIndexAt(nibble)] = orig;
    is_stub.assign(items.size(), false);
    uint32_t head = noIndex;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (orig_of[i] != noIndex) {
            head = i;
        } else {
            is_stub[i] = true;
            if (head != noIndex)
                is_stub[head] = true;
        }
    }
}

/** Re-emit the whole item sequence, with per-item overrides applied by
 *  the caller through @p rank_of and @p word_of. Stream size must come
 *  out identical, or the address map and branches would break. */
template <typename RankOf, typename WordOf>
void
rebuildStream(compress::CompressedImage &image,
              const std::vector<DecodedItem> &items, RankOf rank_of,
              WordOf word_of)
{
    NibbleWriter writer;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (items[i].isCodeword)
            compress::emitCodeword(writer, image.scheme, rank_of(i));
        else
            compress::emitInstruction(writer, image.scheme, word_of(i));
    }
    CC_ASSERT(writer.nibbleCount() == image.textNibbles,
              "fault mutation changed the stream size");
    image.text = writer.bytes();
}

/** Register whose corruption the mutated instruction should target:
 *  prefer the register the original instruction writes, and never use
 *  r2 (stub scratch, excluded from comparison) or r0 (often read as a
 *  literal zero). */
uint8_t
corruptionTarget(const isa::Inst &inst)
{
    uint8_t reg;
    switch (inst.op) {
      case isa::Op::Rlwinm:
      case isa::Op::Srawi:
        reg = inst.ra;
        break;
      case isa::Op::Stw:
      case isa::Op::Stb:
      case isa::Op::Sth:
      case isa::Op::Cmp:
      case isa::Op::Cmpl:
      case isa::Op::Cmpi:
      case isa::Op::Cmpli:
      case isa::Op::Mtspr:
      case isa::Op::Sc:
      case isa::Op::B:
      case isa::Op::Bc:
      case isa::Op::Bclr:
      case isa::Op::Bcctr:
        reg = 3;
        break;
      default:
        reg = inst.rt;
        break;
    }
    if (reg == 0 || reg == 2)
        reg = 3;
    return reg;
}

FaultInjection
injectDictEntryWord(const compress::CompressedImage &image,
                    const DecompressionEngine &engine,
                    const Profile &profile, Rng &rng)
{
    std::set<uint32_t> rank_set;
    for (uint32_t addr : profile.executed) {
        const DecodedItem &item = engine.itemAt(addr);
        if (item.isCodeword)
            rank_set.insert(item.rank);
    }
    CC_ASSERT(!rank_set.empty(),
              "no codeword executed; cannot inject a dictionary fault");
    std::vector<uint32_t> ranks(rank_set.begin(), rank_set.end());
    uint32_t rank = ranks[rng.below(ranks.size())];

    FaultInjection fault{FaultKind::DictEntryWord, image, {}};
    isa::Word original = fault.image.entriesByRank[rank][0];
    isa::Inst victim = isa::decode(original);
    isa::Inst corrupt;
    corrupt.op = isa::Op::Addis;
    corrupt.rt = corruptionTarget(victim);
    corrupt.ra = corrupt.rt;
    corrupt.imm = 0x0100;
    if (isa::encode(corrupt) == original)
        corrupt.imm = 0x0200;
    fault.image.entriesByRank[rank][0] = isa::encode(corrupt);
    fault.description =
        "dictionary rank " + std::to_string(rank) + " slot 0: " +
        isa::disassemble(victim, 0) + " -> " + isa::disassemble(corrupt, 0);
    return fault;
}

FaultInjection
injectCodewordRank(const compress::CompressedImage &image,
                   const DecompressionEngine &engine,
                   const Profile &profile, Rng &rng)
{
    std::vector<uint32_t> executed_codewords;
    for (uint32_t addr : profile.executed) {
        if (engine.itemAt(addr).isCodeword)
            executed_codewords.push_back(addr);
    }
    CC_ASSERT(!executed_codewords.empty(),
              "no codeword executed; cannot inject a rank fault");

    // Pick an executed codeword whose width class holds another rank;
    // a same-width swap keeps the stream layout bit-identical in size.
    uint32_t num_ranks =
        static_cast<uint32_t>(image.entriesByRank.size());
    for (uint64_t attempt = 0; attempt < 64; ++attempt) {
        uint32_t victim_addr =
            executed_codewords[rng.below(executed_codewords.size())];
        uint32_t victim_index = engine.itemIndexAt(victim_addr);
        uint32_t old_rank = engine.items()[victim_index].rank;
        unsigned width = compress::codewordNibbles(image.scheme, old_rank);
        std::vector<uint32_t> candidates;
        for (uint32_t r = 0; r < num_ranks; ++r) {
            if (r != old_rank &&
                compress::codewordNibbles(image.scheme, r) == width) {
                candidates.push_back(r);
            }
        }
        if (candidates.empty())
            continue;
        uint32_t new_rank = candidates[rng.below(candidates.size())];

        FaultInjection fault{FaultKind::CodewordRank, image, {}};
        const std::vector<DecodedItem> &items = engine.items();
        rebuildStream(
            fault.image, items,
            [&](uint32_t i) {
                return i == victim_index ? new_rank : items[i].rank;
            },
            [&](uint32_t i) { return items[i].word; });
        fault.description = "codeword at nibble " + hex32(victim_addr) +
                            ": rank " + std::to_string(old_rank) +
                            " -> rank " + std::to_string(new_rank) +
                            " (same width)";
        return fault;
    }
    CC_PANIC("no same-width rank swap available for any executed codeword");
}

FaultInjection
injectBranchDisp(const compress::CompressedImage &image,
                 const DecompressionEngine &engine, const Profile &profile,
                 Rng &rng)
{
    std::vector<uint32_t> orig_of;
    std::vector<bool> is_stub;
    classifyItems(engine, image, orig_of, is_stub);
    const std::vector<DecodedItem> &items = engine.items();

    // Taken relative branches outside stub groups: retargeting one is
    // guaranteed to change the control flow of the verified run.
    std::vector<uint32_t> candidates;
    for (uint32_t addr : profile.redirected) {
        uint32_t index = engine.itemIndexAt(addr);
        if (is_stub[index] || items[index].isCodeword)
            continue;
        if (isa::decode(items[index].word).isRelativeBranch())
            candidates.push_back(index);
    }
    CC_ASSERT(!candidates.empty(),
              "no taken relative branch executed; cannot inject a "
              "displacement fault");
    uint32_t victim_index = candidates[rng.below(candidates.size())];
    const DecodedItem &victim = items[victim_index];
    isa::Inst inst = isa::decode(victim.word);
    unsigned disp_bits = inst.op == isa::Op::B ? 24 : 14;
    unsigned unit = compress::schemeParams(image.scheme).unitNibbles;
    int64_t old_target =
        static_cast<int64_t>(victim.nibbleAddr) +
        static_cast<int64_t>(inst.disp) * unit;

    // Retarget to the nearest other mapped, non-stub item boundary the
    // displacement field can reach; item-boundary deltas are unit
    // aligned by construction.
    uint32_t best_index = noIndex;
    int64_t best_distance = 0;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (orig_of[i] == noIndex || is_stub[i])
            continue;
        int64_t target = items[i].nibbleAddr;
        if (target == old_target)
            continue;
        int64_t disp =
            (target - static_cast<int64_t>(victim.nibbleAddr)) / unit;
        if (!isa::fitsSigned(disp, disp_bits))
            continue;
        int64_t distance = target > old_target ? target - old_target
                                               : old_target - target;
        if (best_index == noIndex || distance < best_distance) {
            best_index = i;
            best_distance = distance;
        }
    }
    CC_ASSERT(best_index != noIndex,
              "no reachable alternative branch target");
    isa::Inst mutated = inst;
    mutated.disp = static_cast<int32_t>(
        (static_cast<int64_t>(items[best_index].nibbleAddr) -
         static_cast<int64_t>(victim.nibbleAddr)) /
        unit);

    FaultInjection fault{FaultKind::BranchDisp, image, {}};
    rebuildStream(
        fault.image, items,
        [&](uint32_t i) { return items[i].rank; },
        [&](uint32_t i) {
            return i == victim_index ? isa::encode(mutated)
                                     : items[i].word;
        });
    fault.description =
        "branch at nibble " + hex32(victim.nibbleAddr) + ": disp " +
        std::to_string(inst.disp) + " -> " + std::to_string(mutated.disp) +
        " (retargeted to nibble " + hex32(items[best_index].nibbleAddr) +
        ")";
    return fault;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DictEntryWord:
        return "dict-entry-word";
      case FaultKind::CodewordRank:
        return "codeword-rank";
      case FaultKind::BranchDisp:
        return "branch-disp";
    }
    return "unknown";
}

FaultInjection
injectFault(const Program &program, const compress::CompressedImage &image,
            FaultKind kind, uint64_t seed)
{
    (void)program;
    DecompressionEngine engine(image);
    Profile profile = profileRun(image, CompressedCpu::defaultMaxSteps);
    Rng rng(seed);
    switch (kind) {
      case FaultKind::DictEntryWord:
        return injectDictEntryWord(image, engine, profile, rng);
      case FaultKind::CodewordRank:
        return injectCodewordRank(image, engine, profile, rng);
      case FaultKind::BranchDisp:
        return injectBranchDisp(image, engine, profile, rng);
    }
    CC_PANIC("unknown fault kind");
}

} // namespace codecomp::verify
