/**
 * @file
 * Seeded fault injection for the lockstep harness: mutate one aspect of
 * a compressed image -- a dictionary entry word, a codeword's rank, or
 * a branch displacement -- in a way that provably fires during
 * execution, then let runLockstep demonstrate that the divergence is
 * caught and reported.
 *
 * Mutations are chosen from a profiling run of the pristine image so
 * that the corrupted item is actually executed (and, for branches,
 * actually taken); sizes are preserved so the surrounding stream and
 * the address map stay valid.
 */

#ifndef CODECOMP_VERIFY_FAULT_HH
#define CODECOMP_VERIFY_FAULT_HH

#include <string>

#include "compress/image.hh"
#include "program/program.hh"

namespace codecomp::verify {

enum class FaultKind {
    DictEntryWord, //!< corrupt one word of an executed dictionary entry
    CodewordRank,  //!< swap an executed codeword to a same-width rank
    BranchDisp,    //!< retarget an executed, taken relative branch
};

const char *faultKindName(FaultKind kind);

struct FaultInjection
{
    FaultKind kind;
    compress::CompressedImage image; //!< the mutated image
    std::string description;        //!< what was mutated, and where
};

/**
 * Produce a mutated copy of @p image. The profiling run executes the
 * pristine image, so @p program must be the source of @p image.
 * Deterministic in @p seed.
 */
FaultInjection injectFault(const Program &program,
                           const compress::CompressedImage &image,
                           FaultKind kind, uint64_t seed);

} // namespace codecomp::verify

#endif // CODECOMP_VERIFY_FAULT_HH
