/**
 * @file
 * Seeded fault injection for the lockstep harness: mutate one aspect of
 * a compressed image -- a dictionary entry word, a codeword's rank, or
 * a branch displacement -- in a way that provably fires during
 * execution, then let runLockstep demonstrate that the divergence is
 * caught and reported.
 *
 * Mutations are chosen from a profiling run of the pristine image so
 * that the corrupted item is actually executed (and, for branches,
 * actually taken); sizes are preserved so the surrounding stream and
 * the address map stay valid.
 */

#ifndef CODECOMP_VERIFY_FAULT_HH
#define CODECOMP_VERIFY_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compress/image.hh"
#include "decompress/machine.hh"
#include "program/program.hh"
#include "support/rng.hh"

namespace codecomp::verify {

enum class FaultKind {
    DictEntryWord, //!< corrupt one word of an executed dictionary entry
    CodewordRank,  //!< swap an executed codeword to a same-width rank
    BranchDisp,    //!< retarget an executed, taken relative branch
};

const char *faultKindName(FaultKind kind);

struct FaultInjection
{
    FaultKind kind;
    compress::CompressedImage image; //!< the mutated image
    std::string description;        //!< what was mutated, and where
};

/**
 * Produce a mutated copy of @p image. The profiling run executes the
 * pristine image, so @p program must be the source of @p image.
 * Deterministic in @p seed.
 */
FaultInjection injectFault(const Program &program,
                           const compress::CompressedImage &image,
                           FaultKind kind, uint64_t seed);

// ---------------------------------------------------------------------
// Corruption campaign: adversarial mutations of *serialized* images and
// of in-memory structures, each of which must be rejected by the loader,
// trapped by a machine check, or be provably behavior-preserving. An
// abort or a silent divergence is a hardening failure.
// ---------------------------------------------------------------------

/** Byte-level mutation applied to a serialized .cci file. */
enum class CorruptionKind : uint8_t {
    BitFlip,   //!< flip one bit anywhere in the file
    Truncate,  //!< cut the file short at an arbitrary byte
    Splice,    //!< copy one span of the file over another
    LengthLie, //!< overwrite 4 bytes with an arbitrary value
};

const char *corruptionKindName(CorruptionKind kind);

/** How one mutant fared against the hardened load/execute pipeline. */
enum class MutantOutcome : uint8_t {
    LoadRejected,     //!< typed LoadError before any execution
    Trapped,          //!< machine check or watchdog during execution
    RanIdentical,     //!< executed; result matched the pristine run
    SilentDivergence, //!< executed; result differed -- hardening failure
    Panicked,         //!< internal invariant tripped -- hardening failure
};

const char *mutantOutcomeName(MutantOutcome outcome);

struct MutantReport
{
    MutantOutcome outcome;
    std::string description; //!< what was mutated, and where
    std::string detail;      //!< load error / fault / divergence text

    /** Reject, trap, and provably-identical runs are all safe. */
    bool
    acceptable() const
    {
        return outcome == MutantOutcome::LoadRejected ||
               outcome == MutantOutcome::Trapped ||
               outcome == MutantOutcome::RanIdentical;
    }
};

/**
 * Apply @p kind to a copy of @p bytes, drawing positions from @p rng;
 * @p description is set to a human-readable account of the mutation.
 */
std::vector<uint8_t> corruptBytes(const std::vector<uint8_t> &bytes,
                                  CorruptionKind kind, Rng &rng,
                                  std::string &description);

/**
 * Load @p mutant through tryLoadImage and, if it loads, execute it
 * (panics trapped) and compare against @p expected -- the ExecResult of
 * the pristine image.
 */
MutantReport classifyMutantBytes(const std::vector<uint8_t> &mutant,
                                 const ExecResult &expected,
                                 uint64_t max_steps,
                                 std::string description);

/** An in-memory mutated image (bypasses the file checksum). */
struct StructuralMutant
{
    compress::CompressedImage image;
    std::string description;
};

/**
 * Deterministic set of in-memory structural mutations of @p image:
 * validator bait (illegal dictionary words, out-of-range ranks, lying
 * nibble counts, out-of-range entry points, truncated streams) plus
 * jump-table code pointers redirected out of the compressed text, which
 * load-validate cleanly but must machine-check when consumed.
 */
std::vector<StructuralMutant>
structuralMutants(const Program &program,
                  const compress::CompressedImage &image);

/** Validate and, if valid, execute one structural mutant. */
MutantReport classifyMutantImage(const compress::CompressedImage &mutant,
                                 const ExecResult &expected,
                                 uint64_t max_steps,
                                 std::string description);

/** Tally of a whole campaign; ok() means no hardening failures. */
struct CorruptionCampaign
{
    uint64_t total = 0;
    uint64_t loadRejected = 0;
    uint64_t trapped = 0;
    uint64_t ranIdentical = 0;
    std::vector<MutantReport> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Run @p count seeded byte-level mutants of the serialized form of
 * @p image (kinds round-robin), then the structural mutant set, and
 * tally the outcomes. Deterministic in @p seed.
 */
CorruptionCampaign
runCorruptionCampaign(const Program &program,
                      const compress::CompressedImage &image,
                      uint64_t count, uint64_t seed, uint64_t max_steps);

} // namespace codecomp::verify

#endif // CODECOMP_VERIFY_FAULT_HH
