/**
 * @file
 * Lockstep differential execution of a Program on the native Cpu and its
 * CompressedImage on the CompressedCpu.
 *
 * The two processors implement the same architecture over different code
 * address spaces (byte PCs vs nibble PCs, paper section 3.2). The
 * verifier drives them instruction-for-instruction over the same source
 * program and checks after every retired architectural instruction that
 * GPRs, CR, LR/CTR (modulo the documented byte-vs-nibble code-pointer
 * mapping), the store streams, and the output agree. Far-branch stubs --
 * synthetic instruction sequences the compressor inserts for branches
 * whose displacement no longer fits (section 3.2.2) -- retire several
 * compressed instructions for one native branch; the verifier recognises
 * stub groups and compares state at their boundaries.
 *
 * On divergence the verifier emits a bounded report: the last N retired
 * instructions of both sides, disassembled, with the native byte PC and
 * the compressed nibble PC plus the owning decoded item.
 */

#ifndef CODECOMP_VERIFY_LOCKSTEP_HH
#define CODECOMP_VERIFY_LOCKSTEP_HH

#include <string>
#include <vector>

#include "compress/image.hh"
#include "decompress/compressed_cpu.hh"
#include "decompress/cpu.hh"
#include "program/program.hh"

namespace codecomp::verify {

struct LockstepConfig
{
    /** Abort with a max-steps divergence past this many retired
     *  instructions on the compressed side. */
    uint64_t maxSteps = CompressedCpu::defaultMaxSteps;

    /** Retired instructions of history per side in a divergence report. */
    unsigned window = 8;

    /** Stop after this many divergences (>= 1). */
    unsigned maxDivergences = 1;

    /** Run a full joint state check every N verified instructions
     *  (0 = only at entry and exit). */
    uint64_t fullCheckInterval = 0;
};

/** One retired instruction, as remembered by the history windows. */
struct RetiredInst
{
    uint64_t seq = 0;     //!< retire sequence number on its side
    uint32_t pc = 0;      //!< native byte PC / compressed nibble item PC
    isa::Inst inst;       //!< the decoded instruction
    unsigned slot = 0;    //!< slot within the compressed item
    bool synthetic = false; //!< far-branch stub instruction
    bool isCodeword = false;
    uint32_t rank = 0;    //!< dictionary rank when isCodeword
};

struct Divergence
{
    std::string kind;   //!< "gpr", "cr", "lr", "ctr", "pc-map",
                        //!< "inst-word", "store", "output", "halt",
                        //!< "memory", "native-panic", "compressed-panic",
                        //!< "max-steps"
    std::string detail; //!< human-readable specifics
    uint64_t atInst = 0; //!< verified-instruction count when detected
    std::vector<std::string> nativeWindow;     //!< disassembled history
    std::vector<std::string> compressedWindow; //!< disassembled history
};

struct LockstepResult
{
    uint64_t verifiedInsts = 0;   //!< paired native/compressed retires
    uint64_t syntheticInsts = 0;  //!< compressed-only stub retires
    uint64_t stubTraversals = 0;  //!< stub groups crossed; each pairs one
                                  //!< native branch with no compressed
                                  //!< retire of its own
    uint64_t fullStateChecks = 0; //!< joint memory walks performed
    bool nativeHalted = false;
    bool compressedHalted = false;
    ExecResult native;
    ExecResult compressed;
    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/** Run @p program and @p image in lockstep until exit or divergence. */
LockstepResult runLockstep(const Program &program,
                           const compress::CompressedImage &image,
                           const LockstepConfig &config = {});

/** Render one divergence, including both history windows. */
std::string formatDivergence(const Divergence &divergence);

/** Render a whole result: verdict line plus every divergence. */
std::string formatReport(const LockstepResult &result);

} // namespace codecomp::verify

#endif // CODECOMP_VERIFY_LOCKSTEP_HH
