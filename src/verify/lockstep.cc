#include "verify/lockstep.hh"

#include <cstdio>
#include <cstring>
#include <deque>
#include <sstream>

#include "isa/disasm.hh"
#include "support/logging.hh"

namespace codecomp::verify {

namespace {

/** Internal control-flow escape; deliberately not a std::exception. */
struct StopRun
{};

std::string
hex32(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%08x", v);
    return buf;
}

/**
 * The lockstep driver. Owns both processors and all comparison state;
 * runLockstep constructs one per call.
 */
class Verifier
{
  public:
    Verifier(const Program &program,
             const compress::CompressedImage &image,
             const LockstepConfig &config)
        : program_(program), image_(image), config_(config),
          native_(program), compressed_(image)
    {
        buildItemMaps();
        // r2 is the far-branch scratch register: stubs clobber it with
        // target-address halves that exist only in the compressed
        // space, so it is incomparable whenever stubs were emitted.
        excludeR2_ = image.farBranchExpansions > 0;
    }

    LockstepResult run();

  private:
    static constexpr uint32_t noIndex = UINT32_MAX;
    static constexpr uint32_t base_ = compress::CompressedImage::nibbleBase;

    void buildItemMaps();
    bool equalOrMapped(uint32_t native_val, uint32_t compressed_val) const;

    void onRetire(const isa::Inst &inst, uint32_t item_pc, unsigned slot);
    void pairedRetire(const isa::Inst &inst, uint32_t item_pc,
                      unsigned slot, uint32_t orig_index, bool is_codeword,
                      uint32_t rank);
    void stepNative();
    void compareState(const isa::Inst &inst, bool synthetic_group);
    void compareStores();
    void compareOutput();
    void fullStateCheck(const char *when);

    void recordCompressed(const isa::Inst &inst, uint32_t item_pc,
                          unsigned slot, bool synthetic, bool is_codeword,
                          uint32_t rank);
    void capture(const char *kind, const std::string &detail);
    [[noreturn]] void captureStop(const char *kind,
                                  const std::string &detail);
    std::vector<std::string> formatWindow(
        const std::deque<RetiredInst> &window, bool compressed) const;

    const Program &program_;
    const compress::CompressedImage &image_;
    LockstepConfig config_;
    Cpu native_;
    CompressedCpu compressed_;

    /** Per decoded item: the original instruction index that begins
     *  there, or noIndex for far-branch stub continuations. */
    std::vector<uint32_t> origOf_;
    std::vector<bool> isStub_;      //!< item is part of a stub group
    std::vector<uint32_t> stubEnd_; //!< head item -> one-past-end nibble
    /** Original instruction index -> absolute compressed code pointer. */
    std::vector<uint32_t> addrToNibble_;

    bool excludeR2_ = false;
    bool ctrPoisoned_ = false; //!< stub mtctr ran; CTR incomparable
    bool inStub_ = false;
    uint32_t stubOrig_ = noIndex; //!< orig index of the stub's branch
    uint32_t stubStart_ = 0, stubEndNibble_ = 0;

    struct Store
    {
        uint32_t addr;
        unsigned bytes;
        uint32_t value;
    };
    std::vector<Store> nativeStores_, compressedStores_;
    size_t outputCursor_ = 0;

    std::deque<RetiredInst> nativeWindow_, compressedWindow_;
    uint64_t nativeSeq_ = 0, compressedSeq_ = 0;

    LockstepResult result_;
    bool stopped_ = false;
};

void
Verifier::buildItemMaps()
{
    const DecompressionEngine &engine = compressed_.engine();
    const std::vector<DecodedItem> &items = engine.items();

    origOf_.assign(items.size(), noIndex);
    for (const auto &[orig, nibble] : image_.addrMap)
        origOf_[engine.itemIndexAt(nibble)] = orig;

    isStub_.assign(items.size(), false);
    stubEnd_.assign(items.size(), 0);
    uint32_t head = noIndex;
    for (uint32_t i = 0; i < items.size(); ++i) {
        if (origOf_[i] != noIndex) {
            head = i;
            continue;
        }
        // An unmapped item is a stub continuation; the preceding mapped
        // item is the stub head that inherited the branch's identity.
        isStub_[i] = true;
        CC_ASSERT(head != noIndex, "compressed stream begins mid-stub");
        isStub_[head] = true;
        stubEnd_[head] = items[i].nibbleAddr + items[i].nibbles;
    }

    addrToNibble_.assign(program_.text.size(), noIndex);
    for (const auto &[orig, nibble] : image_.addrMap)
        addrToNibble_[orig] = base_ + nibble;
}

/**
 * Value equality modulo the code-pointer mapping: a native byte address
 * of instruction i corresponds to the compressed nibble address of the
 * item that begins at i. Non-code values must match exactly.
 */
bool
Verifier::equalOrMapped(uint32_t native_val, uint32_t compressed_val) const
{
    if (native_val == compressed_val)
        return true;
    if (native_val < Program::textBase || (native_val & 3u) != 0)
        return false;
    uint32_t index = (native_val - Program::textBase) / isa::instBytes;
    if (index >= addrToNibble_.size())
        return false;
    return addrToNibble_[index] == compressed_val;
}

void
Verifier::recordCompressed(const isa::Inst &inst, uint32_t item_pc,
                           unsigned slot, bool synthetic, bool is_codeword,
                           uint32_t rank)
{
    RetiredInst r;
    r.seq = ++compressedSeq_;
    r.pc = item_pc;
    r.inst = inst;
    r.slot = slot;
    r.synthetic = synthetic;
    r.isCodeword = is_codeword;
    r.rank = rank;
    compressedWindow_.push_back(r);
    if (compressedWindow_.size() > config_.window)
        compressedWindow_.pop_front();
}

std::vector<std::string>
Verifier::formatWindow(const std::deque<RetiredInst> &window,
                       bool compressed) const
{
    std::vector<std::string> lines;
    lines.reserve(window.size());
    for (const RetiredInst &r : window) {
        std::ostringstream os;
        os << "#" << r.seq << " pc=" << hex32(r.pc);
        if (compressed) {
            if (r.isCodeword)
                os << " slot " << r.slot << " of codeword rank " << r.rank;
            os << ": " << isa::disassemble(r.inst, 0);
            if (r.synthetic)
                os << " [far-branch stub]";
        } else {
            os << ": " << isa::disassemble(r.inst, r.pc);
        }
        lines.push_back(os.str());
    }
    return lines;
}

void
Verifier::capture(const char *kind, const std::string &detail)
{
    Divergence d;
    d.kind = kind;
    d.detail = detail;
    d.atInst = result_.verifiedInsts;
    d.nativeWindow = formatWindow(nativeWindow_, false);
    d.compressedWindow = formatWindow(compressedWindow_, true);
    result_.divergences.push_back(std::move(d));
    if (result_.divergences.size() >= config_.maxDivergences) {
        stopped_ = true;
        throw StopRun{};
    }
}

void
Verifier::captureStop(const char *kind, const std::string &detail)
{
    Divergence d;
    d.kind = kind;
    d.detail = detail;
    d.atInst = result_.verifiedInsts;
    d.nativeWindow = formatWindow(nativeWindow_, false);
    d.compressedWindow = formatWindow(compressedWindow_, true);
    result_.divergences.push_back(std::move(d));
    stopped_ = true;
    throw StopRun{};
}

/** Retire hook body: every compressed instruction comes through here. */
void
Verifier::onRetire(const isa::Inst &inst, uint32_t item_pc, unsigned slot)
{
    if (result_.verifiedInsts + result_.syntheticInsts >= config_.maxSteps)
        captureStop("max-steps",
                    "compressed side retired more than " +
                        std::to_string(config_.maxSteps) +
                        " instructions without exiting");

    uint32_t item_index = compressed_.engine().itemIndexAt(item_pc - base_);
    const DecodedItem &item = compressed_.engine().items()[item_index];

    if (isStub_[item_index]) {
        ++result_.syntheticInsts;
        recordCompressed(inst, item_pc, slot, true, item.isCodeword,
                         item.rank);
        if (inst.op == isa::Op::Mtspr &&
            inst.spr == static_cast<uint16_t>(isa::Spr::CTR)) {
            ctrPoisoned_ = true;
        }
        return;
    }
    pairedRetire(inst, item_pc, slot, origOf_[item_index], item.isCodeword,
                 item.rank);
}

void
Verifier::pairedRetire(const isa::Inst &inst, uint32_t item_pc,
                       unsigned slot, uint32_t orig_index, bool is_codeword,
                       uint32_t rank)
{
    recordCompressed(inst, item_pc, slot, false, is_codeword, rank);
    CC_ASSERT(orig_index != noIndex, "paired retire on unmapped item");

    uint32_t expected = program_.addrOfIndex(orig_index + slot);
    if (native_.pc() != expected)
        captureStop("pc-map",
                    "native pc " + hex32(native_.pc()) +
                        " != " + hex32(expected) +
                        " expected for original instruction " +
                        std::to_string(orig_index + slot));

    // The compressed stream must reproduce the original words exactly,
    // except relative branches, whose displacement field is re-encoded
    // at codeword granularity (their semantics are checked by the next
    // pc-map comparison instead).
    if (!inst.isRelativeBranch()) {
        isa::Word original = program_.text[orig_index + slot];
        isa::Word retired = isa::encode(inst);
        if (retired != original)
            capture("inst-word",
                    "retired word " + hex32(retired) +
                        " differs from original " + hex32(original) +
                        " at instruction " +
                        std::to_string(orig_index + slot) +
                        (is_codeword ? " (dictionary rank " +
                                           std::to_string(rank) + ")"
                                     : ""));
    }

    stepNative();

    if (!inStub_ && inst.op == isa::Op::Mtspr &&
        inst.spr == static_cast<uint16_t>(isa::Spr::CTR)) {
        // A genuine mtctr overwrites whatever a far-branch stub left in
        // CTR on both sides; the register is comparable again.
        ctrPoisoned_ = false;
    }
    compareState(inst, false);

    ++result_.verifiedInsts;
    if (config_.fullCheckInterval != 0 &&
        result_.verifiedInsts % config_.fullCheckInterval == 0) {
        fullStateCheck("interval");
    }
}

void
Verifier::stepNative()
{
    uint32_t index = program_.indexOfAddr(native_.pc());
    RetiredInst r;
    r.seq = ++nativeSeq_;
    r.pc = native_.pc();
    r.inst = isa::decode(program_.text[index]);
    nativeWindow_.push_back(r);
    if (nativeWindow_.size() > config_.window)
        nativeWindow_.pop_front();

    try {
        native_.step();
    } catch (const MachineCheckError &e) {
        captureStop("native-fault", e.what());
    } catch (const PanicError &e) {
        captureStop("native-panic", e.what());
    }
}

void
Verifier::compareState(const isa::Inst &inst, bool synthetic_group)
{
    const Machine &nm = native_.machine();
    const Machine &cm = compressed_.machine();
    std::string after =
        " after " + isa::disassemble(inst, 0) +
        (synthetic_group ? " (far-branch stub boundary)" : "");

    for (unsigned n = 0; n < isa::numGprs; ++n) {
        if (excludeR2_ && n == 2)
            continue;
        if (!equalOrMapped(nm.gpr(n), cm.gpr(n)))
            capture("gpr", "r" + std::to_string(n) + " native " +
                               hex32(nm.gpr(n)) + " vs compressed " +
                               hex32(cm.gpr(n)) + after);
    }
    if (nm.cr() != cm.cr())
        capture("cr", "CR native " + hex32(nm.cr()) + " vs compressed " +
                          hex32(cm.cr()) + after);
    if (!equalOrMapped(nm.lr(), cm.lr()))
        capture("lr", "LR native " + hex32(nm.lr()) + " vs compressed " +
                          hex32(cm.lr()) + after);
    if (!ctrPoisoned_ && !equalOrMapped(nm.ctr(), cm.ctr()))
        capture("ctr", "CTR native " + hex32(nm.ctr()) +
                           " vs compressed " + hex32(cm.ctr()) + after);

    compareStores();
    compareOutput();

    if (nm.halted() != cm.halted())
        captureStop("halt", nm.halted()
                                ? "native halted, compressed running"
                                : "compressed halted, native running");
}

void
Verifier::compareStores()
{
    if (nativeStores_.size() != compressedStores_.size()) {
        capture("store", "store count native " +
                             std::to_string(nativeStores_.size()) +
                             " vs compressed " +
                             std::to_string(compressedStores_.size()));
        nativeStores_.clear();
        compressedStores_.clear();
        return;
    }
    for (size_t i = 0; i < nativeStores_.size(); ++i) {
        const Store &ns = nativeStores_[i];
        const Store &cs = compressedStores_[i];
        bool value_ok = ns.bytes == 4 ? equalOrMapped(ns.value, cs.value)
                                      : ns.value == cs.value;
        if (ns.addr != cs.addr || ns.bytes != cs.bytes || !value_ok)
            capture("store",
                    "store native [" + hex32(ns.addr) + " x" +
                        std::to_string(ns.bytes) + "] = " + hex32(ns.value) +
                        " vs compressed [" + hex32(cs.addr) + " x" +
                        std::to_string(cs.bytes) + "] = " + hex32(cs.value));
    }
    nativeStores_.clear();
    compressedStores_.clear();
}

void
Verifier::compareOutput()
{
    const std::string &no = native_.machine().output();
    const std::string &co = compressed_.machine().output();
    size_t common = std::min(no.size(), co.size());
    if (common > outputCursor_ &&
        std::memcmp(no.data() + outputCursor_, co.data() + outputCursor_,
                    common - outputCursor_) != 0) {
        capture("output", "output bytes differ after verified prefix of " +
                              std::to_string(outputCursor_) + " bytes");
    }
    outputCursor_ = common;
    if (no.size() != co.size())
        capture("output", "output length native " +
                              std::to_string(no.size()) +
                              " vs compressed " +
                              std::to_string(co.size()));
}

/**
 * Joint walk of both memories, skipping the native .text window (the
 * compressed machine keeps no bytes there). Mismatching aligned words
 * are accepted iff they are pointer-equivalent: patched jump-table
 * slots and stack-saved LR values legitimately differ between spaces.
 */
void
Verifier::fullStateCheck(const char *when)
{
    ++result_.fullStateChecks;
    const Machine &nm = native_.machine();
    const Machine &cm = compressed_.machine();
    const std::vector<uint8_t> &nmem = nm.memory();
    const std::vector<uint8_t> &cmem = cm.memory();

    uint32_t text_end = Program::textBase + program_.textBytes();
    const std::pair<uint32_t, uint32_t> regions[2] = {
        {0, Program::textBase}, {text_end, Machine::memBytes}};

    for (const auto &[begin, end] : regions) {
        if (nm.memHash(begin, end) == cm.memHash(begin, end))
            continue;
        uint32_t addr = begin;
        while (addr < end) {
            if (nmem[addr] == cmem[addr]) {
                ++addr;
                continue;
            }
            uint32_t w = addr & ~3u;
            uint32_t nv = nm.loadWord(w);
            uint32_t cv = cm.loadWord(w);
            if (equalOrMapped(nv, cv)) {
                addr = w + 4;
                continue;
            }
            capture("memory",
                    std::string("memory word at ") + hex32(w) +
                        " native " + hex32(nv) + " vs compressed " +
                        hex32(cv) + " (" + when + " check)");
            addr = w + 4;
        }
    }
}

LockstepResult
Verifier::run()
{
    // Panics from either processor (possible under fault injection)
    // become reportable divergences instead of aborting the process.
    PanicTrap trap;

    native_.machine().setStoreHook(
        [this](uint32_t addr, unsigned bytes, uint32_t value) {
            nativeStores_.push_back({addr, bytes, value});
        });
    compressed_.machine().setStoreHook(
        [this](uint32_t addr, unsigned bytes, uint32_t value) {
            compressedStores_.push_back({addr, bytes, value});
        });
    compressed_.setRetireHook(
        [this](const isa::Inst &inst, uint32_t item_pc, unsigned slot) {
            onRetire(inst, item_pc, slot);
        });

    try {
        fullStateCheck("entry");

        while (!native_.machine().halted() &&
               !compressed_.machine().halted()) {
            uint32_t pc_nibble = compressed_.pc() - base_;
            uint32_t item_index;
            try {
                item_index = compressed_.engine().itemIndexAt(pc_nibble);
            } catch (const MachineCheckError &e) {
                captureStop("compressed-fault", e.what());
            } catch (const PanicError &e) {
                captureStop("compressed-panic", e.what());
            }

            if (inStub_ && (pc_nibble < stubStart_ ||
                            pc_nibble >= stubEndNibble_)) {
                // Control left the stub group: the native side now
                // performs the one original branch the stub replaced.
                inStub_ = false;
                uint32_t expected = program_.addrOfIndex(stubOrig_);
                if (native_.pc() != expected)
                    captureStop("pc-map",
                                "native pc " + hex32(native_.pc()) +
                                    " != " + hex32(expected) +
                                    " at far-branch stub for original "
                                    "instruction " +
                                    std::to_string(stubOrig_));
                isa::Inst branch = isa::decode(program_.text[stubOrig_]);
                stepNative();
                compareState(branch, true);
                ++result_.verifiedInsts;
                ++result_.stubTraversals;
                continue;
            }

            if (!inStub_ && isStub_[item_index]) {
                if (origOf_[item_index] == noIndex)
                    captureStop("pc-map",
                                "compressed control entered a far-branch "
                                "stub body at nibble " +
                                    hex32(compressed_.pc()));
                inStub_ = true;
                stubOrig_ = origOf_[item_index];
                stubStart_ = pc_nibble;
                stubEndNibble_ = stubEnd_[item_index];
                CC_ASSERT(stubEndNibble_ > stubStart_,
                          "stub head without continuation");
            }

            try {
                compressed_.step();
            } catch (const MachineCheckError &e) {
                captureStop("compressed-fault", e.what());
            } catch (const PanicError &e) {
                captureStop("compressed-panic", e.what());
            } catch (const std::runtime_error &e) {
                captureStop("compressed-panic", e.what());
            }
        }

        // Clean exit path: both sides must agree they are done, on the
        // exit code, on the full output, and on all of memory.
        if (native_.machine().halted() != compressed_.machine().halted())
            capture("halt", native_.machine().halted()
                                ? "native halted, compressed running"
                                : "compressed halted, native running");
        if (native_.machine().exitCode() !=
            compressed_.machine().exitCode())
            capture("halt",
                    "exit code native " +
                        std::to_string(native_.machine().exitCode()) +
                        " vs compressed " +
                        std::to_string(compressed_.machine().exitCode()));
        if (native_.machine().output() != compressed_.machine().output())
            capture("output", "final outputs differ");
        fullStateCheck("exit");
    } catch (const StopRun &) {
        // Divergence budget exhausted; fall through to the summary.
    }

    result_.nativeHalted = native_.machine().halted();
    result_.compressedHalted = compressed_.machine().halted();
    result_.native = {native_.machine().output(),
                      native_.machine().exitCode(), native_.instCount()};
    result_.compressed = {compressed_.machine().output(),
                          compressed_.machine().exitCode(),
                          compressed_.instCount()};
    return result_;
}

} // namespace

LockstepResult
runLockstep(const Program &program, const compress::CompressedImage &image,
            const LockstepConfig &config)
{
    Verifier verifier(program, image, config);
    return verifier.run();
}

std::string
formatDivergence(const Divergence &divergence)
{
    std::ostringstream os;
    os << "divergence[" << divergence.kind << "] at verified instruction "
       << divergence.atInst << ": " << divergence.detail << "\n";
    os << "  native window (byte PCs):\n";
    for (const std::string &line : divergence.nativeWindow)
        os << "    " << line << "\n";
    os << "  compressed window (nibble PCs):\n";
    for (const std::string &line : divergence.compressedWindow)
        os << "    " << line << "\n";
    return os.str();
}

std::string
formatReport(const LockstepResult &result)
{
    std::ostringstream os;
    if (result.ok()) {
        os << "LOCKSTEP OK: " << result.verifiedInsts
           << " instructions verified (" << result.syntheticInsts
           << " synthetic, " << result.fullStateChecks
           << " full state checks)\n";
    } else {
        os << "LOCKSTEP FAILED: " << result.divergences.size()
           << " divergence(s), " << result.verifiedInsts
           << " instructions verified (" << result.syntheticInsts
           << " synthetic)\n";
        for (const Divergence &d : result.divergences)
            os << formatDivergence(d);
    }
    return os.str();
}

} // namespace codecomp::verify
