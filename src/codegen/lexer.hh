/**
 * @file
 * Lexer for MiniC, the small C-like language compiled by the SDTS code
 * generator. MiniC is the stand-in for the C sources of SPEC CINT95.
 */

#ifndef CODECOMP_CODEGEN_LEXER_HH
#define CODECOMP_CODEGEN_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace codecomp::codegen {

enum class Tok : uint8_t {
    End,
    Ident,
    Number,
    // keywords
    KwInt, KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak,
    KwContinue, KwSwitch, KwCase, KwDefault,
    // punctuation and operators
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Colon,
    Assign,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Shl, Shr,
    EqEq, NotEq, Lt, Le, Gt, Ge,
    AmpAmp, PipePipe, Bang,
};

/** One lexed token. */
struct Token
{
    Tok kind = Tok::End;
    std::string text;   //!< identifier spelling
    int32_t value = 0;  //!< numeric value for Number
    int line = 0;       //!< 1-based source line, for error messages
};

/** Tokenize @p source; fatal on malformed input. */
std::vector<Token> lex(const std::string &source);

/** Human-readable token-kind name for diagnostics. */
const char *tokName(Tok kind);

} // namespace codecomp::codegen

#endif // CODECOMP_CODEGEN_LEXER_HH
