#include "codegen/lexer.hh"

#include <cctype>
#include <unordered_map>

#include "support/logging.hh"

namespace codecomp::codegen {

namespace {

const std::unordered_map<std::string, Tok> keywords = {
    {"int", Tok::KwInt},         {"if", Tok::KwIf},
    {"else", Tok::KwElse},       {"while", Tok::KwWhile},
    {"for", Tok::KwFor},         {"do", Tok::KwDo},
    {"return", Tok::KwReturn},   {"break", Tok::KwBreak},
    {"continue", Tok::KwContinue}, {"switch", Tok::KwSwitch},
    {"case", Tok::KwCase},       {"default", Tok::KwDefault},
};

int32_t
charEscape(char c, int line)
{
    switch (c) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case '0':
        return 0;
      case '\\':
        return '\\';
      case '\'':
        return '\'';
      default:
        CC_FATAL("bad escape '\\", std::string(1, c), "' at line ", line);
    }
}

} // namespace

std::vector<Token>
lex(const std::string &src)
{
    std::vector<Token> toks;
    size_t i = 0;
    int line = 1;
    size_t n = src.size();

    auto push = [&toks, &line](Tok kind) {
        toks.push_back({kind, "", 0, line});
    };

    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            while (i < n && src[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                if (src[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                CC_FATAL("unterminated comment at line ", line);
            i += 2;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < n && (std::isalnum(static_cast<unsigned char>(src[i]))
                             || src[i] == '_'))
                ++i;
            std::string word = src.substr(start, i - start);
            auto it = keywords.find(word);
            if (it != keywords.end())
                push(it->second);
            else
                toks.push_back({Tok::Ident, word, 0, line});
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int base = 10;
            if (c == '0' && i + 1 < n &&
                (src[i + 1] == 'x' || src[i + 1] == 'X')) {
                base = 16;
                i += 2;
                start = i;
            }
            while (i < n &&
                   std::isxdigit(static_cast<unsigned char>(src[i])))
                ++i;
            if (i == start)
                CC_FATAL("malformed numeric literal at line ", line);
            int64_t value =
                std::stoll(src.substr(start, i - start), nullptr, base);
            if (value > 0xffffffffll)
                CC_FATAL("literal too large, line ", line);
            toks.push_back({Tok::Number, "",
                            static_cast<int32_t>(value), line});
            continue;
        }
        if (c == '\'') {
            if (i + 2 >= n)
                CC_FATAL("unterminated char literal, line ", line);
            int32_t value;
            if (src[i + 1] == '\\') {
                value = charEscape(src[i + 2], line);
                if (i + 3 >= n || src[i + 3] != '\'')
                    CC_FATAL("bad char literal, line ", line);
                i += 4;
            } else {
                value = static_cast<unsigned char>(src[i + 1]);
                if (src[i + 2] != '\'')
                    CC_FATAL("bad char literal, line ", line);
                i += 3;
            }
            toks.push_back({Tok::Number, "", value, line});
            continue;
        }

        auto two = [&](char next) {
            return i + 1 < n && src[i + 1] == next;
        };
        switch (c) {
          case '(':
            push(Tok::LParen);
            break;
          case ')':
            push(Tok::RParen);
            break;
          case '{':
            push(Tok::LBrace);
            break;
          case '}':
            push(Tok::RBrace);
            break;
          case '[':
            push(Tok::LBracket);
            break;
          case ']':
            push(Tok::RBracket);
            break;
          case ';':
            push(Tok::Semi);
            break;
          case ',':
            push(Tok::Comma);
            break;
          case ':':
            push(Tok::Colon);
            break;
          case '+':
            push(Tok::Plus);
            break;
          case '-':
            push(Tok::Minus);
            break;
          case '*':
            push(Tok::Star);
            break;
          case '/':
            push(Tok::Slash);
            break;
          case '%':
            push(Tok::Percent);
            break;
          case '^':
            push(Tok::Caret);
            break;
          case '=':
            if (two('=')) {
                push(Tok::EqEq);
                ++i;
            } else {
                push(Tok::Assign);
            }
            break;
          case '!':
            if (two('=')) {
                push(Tok::NotEq);
                ++i;
            } else {
                push(Tok::Bang);
            }
            break;
          case '<':
            if (two('=')) {
                push(Tok::Le);
                ++i;
            } else if (two('<')) {
                push(Tok::Shl);
                ++i;
            } else {
                push(Tok::Lt);
            }
            break;
          case '>':
            if (two('=')) {
                push(Tok::Ge);
                ++i;
            } else if (two('>')) {
                push(Tok::Shr);
                ++i;
            } else {
                push(Tok::Gt);
            }
            break;
          case '&':
            if (two('&')) {
                push(Tok::AmpAmp);
                ++i;
            } else {
                push(Tok::Amp);
            }
            break;
          case '|':
            if (two('|')) {
                push(Tok::PipePipe);
                ++i;
            } else {
                push(Tok::Pipe);
            }
            break;
          default:
            CC_FATAL("unexpected character '", std::string(1, c),
                     "' at line ", line);
        }
        ++i;
    }
    toks.push_back({Tok::End, "", 0, line});
    return toks;
}

const char *
tokName(Tok kind)
{
    switch (kind) {
      case Tok::End: return "<end>";
      case Tok::Ident: return "identifier";
      case Tok::Number: return "number";
      case Tok::KwInt: return "'int'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwSwitch: return "'switch'";
      case Tok::KwCase: return "'case'";
      case Tok::KwDefault: return "'default'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Semi: return "';'";
      case Tok::Comma: return "','";
      case Tok::Colon: return "':'";
      case Tok::Assign: return "'='";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::Lt: return "'<'";
      case Tok::Le: return "'<='";
      case Tok::Gt: return "'>'";
      case Tok::Ge: return "'>='";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Bang: return "'!'";
    }
    return "<bad>";
}

} // namespace codecomp::codegen
