/**
 * @file
 * Abstract syntax tree for MiniC.
 *
 * Every value is a 32-bit signed int; arrays are one-dimensional.
 * Assignments are statements (not expressions), which keeps the SDTS
 * templates simple and regular -- exactly the property the paper's
 * compression method exploits.
 */

#ifndef CODECOMP_CODEGEN_AST_HH
#define CODECOMP_CODEGEN_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace codecomp::codegen {

enum class BinOp : uint8_t {
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Shl, Shr,
    Eq, Ne, Lt, Le, Gt, Ge,
    LogAnd, LogOr,
};

enum class UnOp : uint8_t {
    Neg,
    Not,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
    IntLit,  //!< value
    Var,     //!< name (scalar variable)
    Index,   //!< name[lhs]
    Unary,   //!< unop lhs
    Binary,  //!< lhs binop rhs
    Call,    //!< name(args...); includes the builtins putc/puti/exit
};

struct Expr
{
    ExprKind kind;
    int32_t value = 0;
    std::string name;
    UnOp unop = UnOp::Neg;
    BinOp binop = BinOp::Add;
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
    int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
    Block,     //!< body
    LocalDecl, //!< int name [arraySize]? (= init)?
    Assign,    //!< name (= value) or name[index] = value
    ExprStmt,  //!< expr; (usually a call)
    If,        //!< cond, thenStmt, elseStmt?
    While,     //!< cond, body[0]
    DoWhile,   //!< body[0], cond
    For,       //!< init?, cond?, step?, body[0]
    Return,    //!< expr? (defaults to 0)
    Break,
    Continue,
    Switch,    //!< cond = selector; cases; defaultBody
};

/** One `case N:` arm with its statements (falls through like C). */
struct SwitchCase
{
    int32_t value = 0;
    std::vector<StmtPtr> body;
};

struct Stmt
{
    StmtKind kind;
    std::string name;
    int32_t arraySize = 0; //!< 0 for scalar LocalDecl
    ExprPtr index;         //!< Assign to array element
    ExprPtr cond;          //!< If/While/DoWhile/For cond; Switch selector;
                           //!< Assign value; Return value; ExprStmt expr
    ExprPtr init;          //!< LocalDecl initializer
    StmtPtr initStmt;      //!< For init
    StmtPtr stepStmt;      //!< For step
    StmtPtr thenStmt;      //!< If then
    StmtPtr elseStmt;      //!< If else
    std::vector<StmtPtr> body;
    std::vector<SwitchCase> cases;
    std::vector<StmtPtr> defaultBody;
    bool hasDefault = false;
    int line = 0;
};

/** A global variable: scalar or array, with optional initializers. */
struct GlobalDecl
{
    std::string name;
    int32_t arraySize = 0; //!< 0 for scalar
    std::vector<int32_t> init;
};

struct Function
{
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    int line = 0;
};

/** A whole translation unit. */
struct TranslationUnit
{
    std::vector<GlobalDecl> globals;
    std::vector<Function> functions;
};

} // namespace codecomp::codegen

#endif // CODECOMP_CODEGEN_AST_HH
