/**
 * @file
 * SDTS code generator for MiniC, targeting ppclite.
 *
 * The generator is a deliberately template-driven syntax-directed
 * translation scheme (paper section 1.1): every AST production expands
 * to a fixed instruction template, so compiled programs exhibit the
 * high instruction-encoding redundancy the compression method exploits.
 *
 * Register conventions:
 *   r0        scratch (shift amounts, LR shuttle, syscall numbers)
 *   r1        stack pointer
 *   r2        reserved for the compressor's far-branch rewriting
 *   r3..r10   argument / return registers (caller-saved)
 *   r5..r12   expression evaluation stack (caller-saved)
 *   r13       address-materialization temporary
 *   r14..r31  callee-saved; allocated to named scalar locals
 */

#ifndef CODECOMP_CODEGEN_CODEGEN_HH
#define CODECOMP_CODEGEN_CODEGEN_HH

#include <string>

#include "codegen/ast.hh"
#include "link/object.hh"
#include "program/program.hh"

namespace codecomp::codegen {

/** Compilation options. */
struct CompileOptions
{
    /** Link the MiniC runtime library (statically, as the paper's
     *  benchmarks linked libc). */
    bool includeRuntime = true;

    /**
     * The paper's section-5 proposal: standardize function frames so
     * prologues and epilogues become byte-identical across functions
     * and compress to single codewords. Every function whose locals
     * fit uses the same frame size and saves *all* callee-saved
     * registers, trading execution time (extra saves/restores) for
     * code size.
     */
    bool standardizedFrames = false;

    /** Frame size used when standardizedFrames is set and fits. */
    int32_t standardFrameBytes = 256;
};

/**
 * Compile MiniC source into a linked Program (separate compilation of
 * the translation unit and, when options.includeRuntime is set, the
 * runtime library, followed by a static link); fatal on errors.
 */
Program compile(const std::string &source,
                const CompileOptions &options = {});

/** Compile an already-parsed unit and link it (with the runtime when
 *  options.includeRuntime is set). */
Program compileUnit(const TranslationUnit &unit,
                    const CompileOptions &options = {});

/** Separate compilation: one translation unit -> one relocatable
 *  object module (no runtime, no linking). */
link::ObjectModule compileModule(const std::string &source,
                                 const std::string &module_name,
                                 const CompileOptions &options = {});

/** Compile an already-parsed unit to an object module. */
link::ObjectModule compileModuleUnit(const TranslationUnit &unit,
                                     const std::string &module_name,
                                     const CompileOptions &options = {});

/** The runtime library as a pre-compiled object module. */
link::ObjectModule runtimeModule(const CompileOptions &options = {});

/** MiniC source of the runtime library (abs/min/max/LCG/etc.). */
const char *runtimeSource();

} // namespace codecomp::codegen

#endif // CODECOMP_CODEGEN_CODEGEN_HH
