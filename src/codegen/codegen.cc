#include "codegen/codegen.hh"

#include <unordered_map>
#include <utility>

#include "codegen/parser.hh"
#include "isa/builder.hh"
#include "link/linker.hh"
#include "support/logging.hh"

namespace codecomp::codegen {

namespace {

using isa::Inst;

constexpr uint8_t regSp = 1;
constexpr uint8_t regTmp = 13;      //!< address materialization
constexpr uint8_t regArg0 = 3;      //!< first argument / return value
constexpr uint8_t scratchBase = 5;  //!< expression stack base register
constexpr unsigned scratchCount = 8;
constexpr uint8_t calleeBase = 14;  //!< first callee-saved register
constexpr unsigned calleeCount = 18;
constexpr unsigned maxArgs = 8;

/** Where a named local lives. */
struct Location
{
    enum class Kind { CalleeReg, StackSlot, StackArray, GlobalScalar,
                      GlobalArray } kind;
    uint8_t reg = 0;      //!< CalleeReg
    int32_t offset = 0;   //!< frame offset or .data offset
    int32_t size = 0;     //!< array element count
};

class Emitter
{
  public:
    Emitter(const TranslationUnit &unit, const CompileOptions &options)
        : unit_(unit), options_(options)
    {}

    link::ObjectModule
    run(const std::string &module_name)
    {
        layoutGlobals();

        for (const Function &fn : unit_.functions)
            emitFunction(fn);

        // Package the relocatable module; all cross-function and data
        // references stay symbolic for the linker.
        link::ObjectModule module;
        module.name = module_name;
        module.text = std::move(program_.text);
        module.data = std::move(data_);
        module.functions = std::move(program_.functions);
        for (const auto &[index, callee] : callFixups_)
            module.calls.push_back({index, callee});
        for (const auto &[index, offset] : dataHaFixups_)
            module.dataRefs.push_back(
                {index, offset, link::DataReloc::Half::Ha});
        for (const auto &[index, offset] : dataLoFixups_)
            module.dataRefs.push_back(
                {index, offset, link::DataReloc::Half::Lo});
        for (const CodeReloc &reloc : program_.codeRelocs)
            module.tables.push_back({reloc.dataOffset, reloc.targetIndex});
        return module;
    }

  private:
    // ---------------- emission primitives ----------------

    uint32_t
    emit(const Inst &inst)
    {
        program_.text.push_back(isa::encode(inst));
        return static_cast<uint32_t>(program_.text.size() - 1);
    }

    uint32_t here() const
    {
        return static_cast<uint32_t>(program_.text.size());
    }

    void
    patchImm(uint32_t index, int32_t imm)
    {
        Inst inst = isa::decode(program_.text[index]);
        inst.imm = imm;
        program_.text[index] = isa::encode(inst);
    }

    void
    patchDisp(uint32_t index, int32_t disp)
    {
        Inst inst = isa::decode(program_.text[index]);
        inst.disp = disp;
        program_.text[index] = isa::encode(inst);
    }

    // ---------------- labels ----------------

    using Label = uint32_t;

    Label
    newLabel()
    {
        labels_.push_back(UINT32_MAX);
        return static_cast<Label>(labels_.size() - 1);
    }

    void
    bind(Label label)
    {
        CC_ASSERT(labels_[label] == UINT32_MAX, "label bound twice");
        labels_[label] = here();
    }

    /** Unconditional branch to a (possibly forward) label. */
    void
    emitB(Label label)
    {
        labelFixups_.push_back({emit(isa::b(0)), label});
    }

    /** Conditional branch to a label. */
    void
    emitBc(isa::Bo bo, uint8_t bi, Label label)
    {
        labelFixups_.push_back({emit(isa::bc(bo, bi, 0)), label});
    }

    void
    resolveLabels()
    {
        for (const auto &[index, label] : labelFixups_) {
            uint32_t target = labels_[label];
            CC_ASSERT(target != UINT32_MAX, "unbound label");
            patchDisp(index, static_cast<int32_t>(target) -
                             static_cast<int32_t>(index));
        }
        labelFixups_.clear();
        labels_.clear();
    }

    // ---------------- globals ----------------

    void
    layoutGlobals()
    {
        for (const GlobalDecl &global : unit_.globals) {
            if (globals_.count(global.name))
                CC_FATAL("duplicate global '", global.name, "'");
            Location loc;
            loc.kind = global.arraySize > 0 ? Location::Kind::GlobalArray
                                            : Location::Kind::GlobalScalar;
            loc.offset = static_cast<int32_t>(data_.size());
            loc.size = global.arraySize;
            int32_t words = global.arraySize > 0 ? global.arraySize : 1;
            for (int32_t i = 0; i < words; ++i) {
                int32_t value = i < static_cast<int32_t>(global.init.size())
                                    ? global.init[i]
                                    : (global.arraySize == 0 &&
                                       !global.init.empty()
                                           ? global.init[0]
                                           : 0);
                uint32_t u = static_cast<uint32_t>(value);
                data_.push_back(static_cast<uint8_t>(u >> 24));
                data_.push_back(static_cast<uint8_t>(u >> 16));
                data_.push_back(static_cast<uint8_t>(u >> 8));
                data_.push_back(static_cast<uint8_t>(u));
            }
            globals_.emplace(global.name, loc);
        }
    }

    // ---------------- function frame ----------------

    /** Walk statements, assigning every local a home. */
    void
    collectLocals(const std::vector<StmtPtr> &stmts)
    {
        for (const StmtPtr &stmt : stmts)
            collectLocals(*stmt);
    }

    void
    collectLocals(const Stmt &stmt)
    {
        if (stmt.kind == StmtKind::LocalDecl) {
            if (locals_.count(stmt.name))
                CC_FATAL("duplicate local '", stmt.name, "' in function ",
                         currentFunction_);
            Location loc;
            if (stmt.arraySize > 0) {
                loc.kind = Location::Kind::StackArray;
                loc.size = stmt.arraySize;
                loc.offset = nextStackOffset_;
                nextStackOffset_ += stmt.arraySize * 4;
            } else if (numCalleeUsed_ < calleeCount) {
                loc.kind = Location::Kind::CalleeReg;
                loc.reg = static_cast<uint8_t>(calleeBase + numCalleeUsed_);
                ++numCalleeUsed_;
            } else {
                loc.kind = Location::Kind::StackSlot;
                loc.offset = nextStackOffset_;
                nextStackOffset_ += 4;
            }
            locals_.emplace(stmt.name, loc);
        }
        if (stmt.initStmt)
            collectLocals(*stmt.initStmt);
        if (stmt.stepStmt)
            collectLocals(*stmt.stepStmt);
        if (stmt.thenStmt)
            collectLocals(*stmt.thenStmt);
        if (stmt.elseStmt)
            collectLocals(*stmt.elseStmt);
        collectLocals(stmt.body);
        for (const SwitchCase &arm : stmt.cases)
            collectLocals(arm.body);
        collectLocals(stmt.defaultBody);
    }

    void
    emitFunction(const Function &fn)
    {
        if (functionEntry_.count(fn.name))
            CC_FATAL("duplicate function '", fn.name, "'");
        if (fn.params.size() > maxArgs)
            CC_FATAL("too many parameters in ", fn.name);
        functionEntry_.emplace(fn.name, here());
        currentFunction_ = fn.name;

        locals_.clear();
        numCalleeUsed_ = 0;
        nextStackOffset_ = 8; // slots 0..7 reserved (back chain area)
        evalDepth_ = 0;
        savedBelow_ = 0;

        // Parameters get homes first, in order.
        for (const std::string &param : fn.params) {
            Stmt decl;
            decl.kind = StmtKind::LocalDecl;
            decl.name = param;
            collectLocals(decl);
        }
        collectLocals(fn.body);

        // Frame: [low] locals/arrays | spill(8 words) | callee saves |
        //        saved LR [high].
        spillOffset_ = nextStackOffset_;
        unsigned saved_regs = numCalleeUsed_;
        if (options_.standardizedFrames) {
            // Standardized template: save the full callee-saved set so
            // every prologue/epilogue is byte-identical (paper sec. 5).
            int32_t needed = spillOffset_ + 32 +
                             static_cast<int32_t>(calleeCount) * 4 + 4;
            if (needed <= options_.standardFrameBytes) {
                saved_regs = calleeCount;
                frameSize_ = options_.standardFrameBytes;
            } else {
                // Oversized frame (large local arrays): fall back.
                saved_regs = numCalleeUsed_;
                frameSize_ = (needed + 15) & ~15;
            }
        } else {
            int32_t save_area =
                static_cast<int32_t>(saved_regs) * 4 + 4; // + LR
            frameSize_ = spillOffset_ + 32 + save_area;
            frameSize_ = (frameSize_ + 15) & ~15;
        }
        numCalleeSaved_ = saved_regs;

        FunctionSymbol sym;
        sym.name = fn.name;
        sym.body.first = here();

        // --- prologue template ---
        uint32_t prologue_start = here();
        emit(isa::mflr(0));
        emit(isa::addi(regSp, regSp, -frameSize_));
        emit(isa::stw(0, frameSize_ - 4, regSp));
        for (unsigned i = 0; i < numCalleeSaved_; ++i)
            emit(isa::stw(static_cast<uint8_t>(calleeBase + i),
                          frameSize_ - 8 - static_cast<int32_t>(i) * 4,
                          regSp));
        sym.prologue = {prologue_start, here() - prologue_start};

        // Move incoming arguments to their homes.
        for (size_t i = 0; i < fn.params.size(); ++i) {
            const Location &loc = locals_.at(fn.params[i]);
            uint8_t arg_reg = static_cast<uint8_t>(regArg0 + i);
            if (loc.kind == Location::Kind::CalleeReg)
                emit(isa::mr(loc.reg, arg_reg));
            else
                emit(isa::stw(arg_reg, loc.offset, regSp));
        }

        epilogueLabel_ = newLabel();
        for (const StmtPtr &stmt : fn.body)
            emitStmt(*stmt);

        // Implicit `return 0` when control reaches the end of the body.
        emit(isa::li(regArg0, 0));

        // --- epilogue template ---
        bind(epilogueLabel_);
        uint32_t epilogue_start = here();
        emit(isa::lwz(0, frameSize_ - 4, regSp));
        emit(isa::mtlr(0));
        for (unsigned i = 0; i < numCalleeSaved_; ++i)
            emit(isa::lwz(static_cast<uint8_t>(calleeBase + i),
                          frameSize_ - 8 - static_cast<int32_t>(i) * 4,
                          regSp));
        emit(isa::addi(regSp, regSp, frameSize_));
        emit(isa::blr());
        sym.epilogues.push_back({epilogue_start, here() - epilogue_start});

        sym.body.count = here() - sym.body.first;
        program_.functions.push_back(std::move(sym));
        resolveTables();
        resolveLabels();
        CC_ASSERT(evalDepth_ == 0, "expression stack imbalance in ",
                  fn.name);
    }

    // ---------------- expression evaluation ----------------

    uint8_t scratchReg(unsigned depth) const
    {
        return static_cast<uint8_t>(scratchBase + depth);
    }

    /** Push: evaluate @p expr into the next expression-stack register. */
    uint8_t
    evalExpr(const Expr &expr)
    {
        if (evalDepth_ >= scratchCount)
            CC_FATAL("expression too deep in function ", currentFunction_,
                     " at line ", expr.line);
        uint8_t dst = scratchReg(evalDepth_);
        ++evalDepth_;
        switch (expr.kind) {
          case ExprKind::IntLit:
            emitLoadImm(dst, expr.value);
            break;
          case ExprKind::Var:
            emitLoadVar(dst, expr);
            break;
          case ExprKind::Index:
            emitLoadIndex(dst, expr);
            break;
          case ExprKind::Unary:
            emitUnary(dst, expr);
            break;
          case ExprKind::Binary:
            emitBinary(dst, expr);
            break;
          case ExprKind::Call:
            emitCall(dst, expr);
            break;
        }
        return dst;
    }

    void pop() { CC_ASSERT(evalDepth_ > 0, "pop on empty stack");
                 --evalDepth_; }

    /**
     * Evaluate an operand, avoiding the copy when the value already
     * lives in a callee-saved register (nothing in an expression can
     * modify a named local, so the register is stable). Sets @p pushed
     * when an expression-stack slot was consumed; the caller must pop.
     */
    uint8_t
    evalOperand(const Expr &expr, bool &pushed)
    {
        if (expr.kind == ExprKind::Var) {
            const Location &loc = lookup(expr.name, expr.line);
            if (loc.kind == Location::Kind::CalleeReg) {
                pushed = false;
                return loc.reg;
            }
        }
        pushed = true;
        return evalExpr(expr);
    }

    /** True if evalInto() can evaluate @p expr straight into an
     *  arbitrary destination register. */
    static bool
    canEvalInto(const Expr &expr)
    {
        if (expr.kind == ExprKind::Call)
            return false;
        if (expr.kind == ExprKind::Binary &&
            (expr.binop == BinOp::LogAnd || expr.binop == BinOp::LogOr))
            return false;
        return true;
    }

    /**
     * Destination hinting: evaluate @p expr with the result placed
     * directly in @p dst (a callee-saved register), eliding the
     * scratch-to-home copy of a plain assignment. Sub-expressions never
     * write callee-saved registers, so @p dst stays stable until the
     * final defining instruction.
     */
    void
    evalInto(uint8_t dst, const Expr &expr)
    {
        CC_ASSERT(canEvalInto(expr), "expression cannot target dst");
        ++evalDepth_; // reserve a phantom slot; the value goes to dst
        switch (expr.kind) {
          case ExprKind::IntLit:
            emitLoadImm(dst, expr.value);
            break;
          case ExprKind::Var:
            emitLoadVar(dst, expr);
            break;
          case ExprKind::Index:
            emitLoadIndex(dst, expr);
            break;
          case ExprKind::Unary:
            emitUnary(dst, expr);
            break;
          case ExprKind::Binary:
            emitBinary(dst, expr);
            break;
          case ExprKind::Call:
            CC_PANIC("unreachable");
        }
        --evalDepth_;
    }

    void
    emitLoadImm(uint8_t dst, int32_t value)
    {
        if (isa::fitsSigned(value, 16)) {
            emit(isa::li(dst, value));
        } else {
            // lis + ori template for full 32-bit constants.
            emit(isa::lis(dst, static_cast<int32_t>(static_cast<int16_t>(
                                   (static_cast<uint32_t>(value) >> 16) &
                                   0xffff))));
            emit(isa::ori(dst, dst,
                          static_cast<int32_t>(value & 0xffff)));
        }
    }

    const Location &
    lookup(const std::string &name, int line)
    {
        auto local = locals_.find(name);
        if (local != locals_.end())
            return local->second;
        auto global = globals_.find(name);
        if (global != globals_.end())
            return global->second;
        CC_FATAL("undefined variable '", name, "' at line ", line);
    }

    /** lis rT, g@ha then record both fixups; returns the lis index. */
    uint32_t
    emitGlobalHa(uint8_t reg, int32_t data_offset)
    {
        uint32_t index = emit(isa::lis(reg, 0));
        dataHaFixups_.push_back({index, static_cast<uint32_t>(data_offset)});
        return index;
    }

    void
    emitLoadVar(uint8_t dst, const Expr &expr)
    {
        const Location &loc = lookup(expr.name, expr.line);
        switch (loc.kind) {
          case Location::Kind::CalleeReg:
            emit(isa::mr(dst, loc.reg));
            return;
          case Location::Kind::StackSlot:
            emit(isa::lwz(dst, loc.offset, regSp));
            return;
          case Location::Kind::GlobalScalar: {
            emitGlobalHa(regTmp, loc.offset);
            uint32_t index = emit(isa::lwz(dst, 0, regTmp));
            dataLoFixups_.push_back(
                {index, static_cast<uint32_t>(loc.offset)});
            return;
          }
          default:
            CC_FATAL("array '", expr.name,
                     "' used without subscript at line ", expr.line);
        }
    }

    /** Materialize the byte address of array @p loc base into regTmp. */
    void
    emitArrayBase(const Location &loc)
    {
        if (loc.kind == Location::Kind::GlobalArray) {
            emitGlobalHa(regTmp, loc.offset);
            uint32_t index = emit(isa::addi(regTmp, regTmp, 0));
            dataLoFixups_.push_back(
                {index, static_cast<uint32_t>(loc.offset)});
        } else {
            CC_ASSERT(loc.kind == Location::Kind::StackArray,
                      "not an array");
            emit(isa::addi(regTmp, regSp, loc.offset));
        }
    }

    void
    emitLoadIndex(uint8_t dst, const Expr &expr)
    {
        const Location &loc = lookup(expr.name, expr.line);
        if (loc.kind != Location::Kind::GlobalArray &&
            loc.kind != Location::Kind::StackArray)
            CC_FATAL("subscript on non-array '", expr.name, "' at line ",
                     expr.line);
        // The slot reserved for dst is reused for the index when it
        // needs materializing.
        --evalDepth_;
        bool idx_pushed;
        uint8_t idx = evalOperand(*expr.lhs, idx_pushed);
        emitArrayBase(loc);
        emit(isa::slwi(0, idx, 2));
        emit(isa::lwzx(dst, regTmp, 0));
        if (idx_pushed)
            pop();
        ++evalDepth_;
    }

    void
    emitUnary(uint8_t dst, const Expr &expr)
    {
        --evalDepth_;
        bool src_pushed;
        uint8_t src = evalOperand(*expr.lhs, src_pushed);
        if (expr.unop == UnOp::Neg) {
            emit(isa::neg(dst, src));
        } else {
            // Logical not: dst = (src == 0).
            emit(isa::cmpi(0, src, 0));
            emit(isa::li(dst, 1));
            Label skip = newLabel();
            emitBc(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq), skip);
            emit(isa::li(dst, 0));
            bind(skip);
        }
        if (src_pushed)
            pop();
        ++evalDepth_;
    }

    /** Emit a value-producing compare template (paper-style cr1 use). */
    void
    emitCompareValue(uint8_t dst, uint8_t lhs, const Expr &rhs_expr,
                     BinOp op)
    {
        bool unsigned_cmp = false; // MiniC ints are signed
        bool rhs_imm = rhs_expr.kind == ExprKind::IntLit &&
                       isa::fitsSigned(rhs_expr.value, 16);
        if (rhs_imm) {
            emit(unsigned_cmp ? isa::cmpli(1, lhs, rhs_expr.value)
                              : isa::cmpi(1, lhs, rhs_expr.value));
        } else {
            bool rhs_pushed;
            uint8_t rhs = evalOperand(rhs_expr, rhs_pushed);
            emit(isa::cmp(1, lhs, rhs));
            if (rhs_pushed)
                pop();
        }
        isa::CrBit bit;
        bool sense;
        switch (op) {
          case BinOp::Eq: bit = isa::CrBit::Eq; sense = true; break;
          case BinOp::Ne: bit = isa::CrBit::Eq; sense = false; break;
          case BinOp::Lt: bit = isa::CrBit::Lt; sense = true; break;
          case BinOp::Ge: bit = isa::CrBit::Lt; sense = false; break;
          case BinOp::Gt: bit = isa::CrBit::Gt; sense = true; break;
          case BinOp::Le: bit = isa::CrBit::Gt; sense = false; break;
          default: CC_PANIC("not a comparison");
        }
        emit(isa::li(dst, 1));
        Label skip = newLabel();
        emitBc(sense ? isa::Bo::IfTrue : isa::Bo::IfFalse,
               isa::crBit(1, bit), skip);
        emit(isa::li(dst, 0));
        bind(skip);
    }

    void
    emitBinary(uint8_t dst, const Expr &expr)
    {
        switch (expr.binop) {
          case BinOp::LogAnd:
          case BinOp::LogOr: {
            // Short-circuit evaluation.
            --evalDepth_;
            bool is_and = expr.binop == BinOp::LogAnd;
            Label out_short = newLabel();
            Label end = newLabel();
            uint8_t lhs = evalExpr(*expr.lhs);
            emit(isa::cmpi(0, lhs, 0));
            emitBc(is_and ? isa::Bo::IfTrue : isa::Bo::IfFalse,
                   isa::crBit(0, isa::CrBit::Eq), out_short);
            pop();
            uint8_t rhs = evalExpr(*expr.rhs);
            CC_ASSERT(rhs == dst && rhs == lhs, "slot mismatch");
            emit(isa::cmpi(0, rhs, 0));
            emitBc(is_and ? isa::Bo::IfTrue : isa::Bo::IfFalse,
                   isa::crBit(0, isa::CrBit::Eq), out_short);
            emit(isa::li(dst, is_and ? 1 : 0));
            emitB(end);
            bind(out_short);
            emit(isa::li(dst, is_and ? 0 : 1));
            bind(end);
            return;
          }
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge: {
            --evalDepth_;
            bool lhs_pushed;
            uint8_t lhs = evalOperand(*expr.lhs, lhs_pushed);
            emitCompareValue(dst, lhs, *expr.rhs, expr.binop);
            if (lhs_pushed)
                pop();
            ++evalDepth_;
            return;
          }
          default:
            break;
        }

        --evalDepth_;
        bool lhs_pushed;
        uint8_t lhs = evalOperand(*expr.lhs, lhs_pushed);
        auto finish = [this, lhs_pushed](bool rhs_pushed) {
            if (rhs_pushed)
                pop();
            if (lhs_pushed)
                pop();
            ++evalDepth_;
        };

        // Immediate forms where the ISA has them and the literal fits.
        if (expr.rhs->kind == ExprKind::IntLit) {
            int32_t v = expr.rhs->value;
            switch (expr.binop) {
              case BinOp::Add:
                if (isa::fitsSigned(v, 16)) {
                    emit(isa::addi(dst, lhs, v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Sub:
                if (isa::fitsSigned(-static_cast<int64_t>(v), 16)) {
                    emit(isa::addi(dst, lhs, -v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Mul:
                if (isa::fitsSigned(v, 16)) {
                    emit(isa::mulli(dst, lhs, v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::And:
                if (v >= 0 && v <= 0xffff) {
                    emit(isa::andi(dst, lhs, v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Or:
                if (v >= 0 && v <= 0xffff) {
                    emit(isa::ori(dst, lhs, v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Xor:
                if (v >= 0 && v <= 0xffff) {
                    emit(isa::xori(dst, lhs, v));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Shl:
                if (v >= 0 && v < 32) {
                    emit(isa::slwi(dst, lhs, static_cast<uint8_t>(v)));
                    finish(false);
                    return;
                }
                break;
              case BinOp::Shr:
                if (v > 0 && v < 32) {
                    emit(isa::srawi(dst, lhs, static_cast<uint8_t>(v)));
                    finish(false);
                    return;
                }
                if (v == 0) {
                    if (dst != lhs)
                        emit(isa::mr(dst, lhs));
                    finish(false);
                    return;
                }
                break;
              default:
                break;
            }
        }

        bool rhs_pushed;
        uint8_t rhs = evalOperand(*expr.rhs, rhs_pushed);
        switch (expr.binop) {
          case BinOp::Add:
            emit(isa::add(dst, lhs, rhs));
            break;
          case BinOp::Sub:
            emit(isa::subf(dst, rhs, lhs)); // lhs - rhs
            break;
          case BinOp::Mul:
            emit(isa::mullw(dst, lhs, rhs));
            break;
          case BinOp::Div:
            emit(isa::divw(dst, lhs, rhs));
            break;
          case BinOp::Mod:
            // dst = lhs - (lhs / rhs) * rhs
            emit(isa::divw(regTmp, lhs, rhs));
            emit(isa::mullw(regTmp, regTmp, rhs));
            emit(isa::subf(dst, regTmp, lhs));
            break;
          case BinOp::And:
            emit(isa::and_(dst, lhs, rhs));
            break;
          case BinOp::Or:
            emit(isa::or_(dst, lhs, rhs));
            break;
          case BinOp::Xor:
            emit(isa::xor_(dst, lhs, rhs));
            break;
          case BinOp::Shl:
            emit(isa::slw(dst, lhs, rhs));
            break;
          case BinOp::Shr:
            emit(isa::sraw(dst, lhs, rhs));
            break;
          default:
            CC_PANIC("unhandled binop");
        }
        finish(rhs_pushed);
    }

    void
    emitCall(uint8_t dst, const Expr &expr)
    {
        // Builtins expand inline to syscall templates; they preserve the
        // expression stack, so no spills are needed.
        if (expr.name == "putc" || expr.name == "puti" ||
            expr.name == "exit") {
            if (expr.args.size() != 1)
                CC_FATAL("builtin ", expr.name,
                         " takes 1 argument, line ", expr.line);
            --evalDepth_;
            uint8_t val = evalExpr(*expr.args[0]);
            isa::Syscall code = expr.name == "putc"
                                    ? isa::Syscall::PutChar
                                    : expr.name == "puti"
                                          ? isa::Syscall::PutInt
                                          : isa::Syscall::Exit;
            emit(isa::mr(regArg0, val));
            emit(isa::li(0, static_cast<int32_t>(code)));
            emit(isa::sc());
            // Builtin value is its argument (already in the slot).
            return;
        }

        if (expr.args.size() > maxArgs)
            CC_FATAL("too many arguments at line ", expr.line);
        // The slot reserved by evalExpr is not live across the call; the
        // call's own depth is where arguments will be evaluated.
        --evalDepth_;
        unsigned depth_at_call = evalDepth_;

        // Save expression-stack registers that are live and not yet
        // saved by an enclosing call.
        unsigned save_from = savedBelow_;
        for (unsigned i = save_from; i < depth_at_call; ++i)
            emit(isa::stw(scratchReg(i),
                          spillOffset_ + static_cast<int32_t>(i) * 4,
                          regSp));
        unsigned saved_below_before = savedBelow_;
        savedBelow_ = depth_at_call;

        // Simple arguments (literals and register-resident locals) are
        // materialized straight into their argument registers; complex
        // ones evaluate onto the expression stack first. The final
        // staging is a parallel move: all sources are distinct and
        // monotone with their destinations, so a topological order
        // always exists (no cycles).
        struct ArgSource
        {
            enum class Kind { Scratch, Callee, Imm } kind;
            uint8_t reg = 0;
            int32_t imm = 0;
        };
        std::vector<ArgSource> sources;
        for (const ExprPtr &arg : expr.args) {
            if (arg->kind == ExprKind::IntLit) {
                sources.push_back(
                    {ArgSource::Kind::Imm, 0, arg->value});
                continue;
            }
            if (arg->kind == ExprKind::Var) {
                const Location &loc = lookup(arg->name, arg->line);
                if (loc.kind == Location::Kind::CalleeReg) {
                    sources.push_back(
                        {ArgSource::Kind::Callee, loc.reg, 0});
                    continue;
                }
            }
            sources.push_back(
                {ArgSource::Kind::Scratch, evalExpr(*arg), 0});
        }
        // Scratch-sourced moves first, in an order that never clobbers
        // a pending source.
        std::vector<size_t> pending;
        for (size_t i = 0; i < sources.size(); ++i)
            if (sources[i].kind == ArgSource::Kind::Scratch &&
                sources[i].reg != regArg0 + i)
                pending.push_back(i);
        while (!pending.empty()) {
            bool progressed = false;
            for (size_t k = 0; k < pending.size(); ++k) {
                uint8_t dest =
                    static_cast<uint8_t>(regArg0 + pending[k]);
                bool blocks = false;
                for (size_t other : pending)
                    if (other != pending[k] &&
                        sources[other].reg == dest)
                        blocks = true;
                if (blocks)
                    continue;
                emit(isa::mr(dest, sources[pending[k]].reg));
                pending.erase(pending.begin() +
                              static_cast<ptrdiff_t>(k));
                progressed = true;
                break;
            }
            CC_ASSERT(progressed, "argument move cycle");
        }
        // Then the register-resident and immediate arguments.
        for (size_t i = 0; i < sources.size(); ++i) {
            uint8_t dest = static_cast<uint8_t>(regArg0 + i);
            switch (sources[i].kind) {
              case ArgSource::Kind::Callee:
                emit(isa::mr(dest, sources[i].reg));
                break;
              case ArgSource::Kind::Imm:
                emitLoadImm(dest, sources[i].imm);
                break;
              case ArgSource::Kind::Scratch:
                break;
            }
        }
        evalDepth_ = depth_at_call;

        callFixups_.push_back({emit(isa::bl(0)), expr.name});

        // Restore saved registers and capture the result.
        for (unsigned i = save_from; i < depth_at_call; ++i)
            emit(isa::lwz(scratchReg(i),
                          spillOffset_ + static_cast<int32_t>(i) * 4,
                          regSp));
        savedBelow_ = saved_below_before;
        emit(isa::mr(dst, regArg0));
        ++evalDepth_;
        CC_ASSERT(scratchReg(evalDepth_ - 1) == dst, "call slot mismatch");
    }

    // ---------------- statements ----------------

    void
    emitStore(const std::string &name, const Expr *index, uint8_t value,
              int line)
    {
        const Location &loc = lookup(name, line);
        if (!index) {
            switch (loc.kind) {
              case Location::Kind::CalleeReg:
                emit(isa::mr(loc.reg, value));
                return;
              case Location::Kind::StackSlot:
                emit(isa::stw(value, loc.offset, regSp));
                return;
              case Location::Kind::GlobalScalar: {
                emitGlobalHa(regTmp, loc.offset);
                uint32_t idx = emit(isa::stw(value, 0, regTmp));
                dataLoFixups_.push_back(
                    {idx, static_cast<uint32_t>(loc.offset)});
                return;
              }
              default:
                CC_FATAL("assignment to array '", name,
                         "' without subscript at line ", line);
            }
        }
        if (loc.kind != Location::Kind::GlobalArray &&
            loc.kind != Location::Kind::StackArray)
            CC_FATAL("subscript on non-array '", name, "' at line ", line);
        bool idx_pushed;
        uint8_t idx = evalOperand(*index, idx_pushed);
        emitArrayBase(loc);
        emit(isa::slwi(0, idx, 2));
        emit(isa::add(regTmp, regTmp, 0));
        emit(isa::stw(value, 0, regTmp));
        if (idx_pushed)
            pop();
    }

    static bool
    isComparison(BinOp op)
    {
        switch (op) {
          case BinOp::Eq:
          case BinOp::Ne:
          case BinOp::Lt:
          case BinOp::Le:
          case BinOp::Gt:
          case BinOp::Ge:
            return true;
          default:
            return false;
        }
    }

    /** cr0 bit and sense under which comparison @p op is true. */
    static std::pair<isa::CrBit, bool>
    compareBit(BinOp op)
    {
        switch (op) {
          case BinOp::Eq: return {isa::CrBit::Eq, true};
          case BinOp::Ne: return {isa::CrBit::Eq, false};
          case BinOp::Lt: return {isa::CrBit::Lt, true};
          case BinOp::Ge: return {isa::CrBit::Lt, false};
          case BinOp::Gt: return {isa::CrBit::Gt, true};
          case BinOp::Le: return {isa::CrBit::Gt, false};
          default: CC_PANIC("not a comparison");
        }
    }

    /** Compare template used in branch context: cmp(w)i + bc on cr0. */
    void
    compareAndBranch(const Expr &cond, bool branch_if_true, Label target)
    {
        bool lhs_pushed;
        uint8_t lhs = evalOperand(*cond.lhs, lhs_pushed);
        if (cond.rhs->kind == ExprKind::IntLit &&
            isa::fitsSigned(cond.rhs->value, 16)) {
            emit(isa::cmpi(0, lhs, cond.rhs->value));
        } else {
            bool rhs_pushed;
            uint8_t rhs = evalOperand(*cond.rhs, rhs_pushed);
            emit(isa::cmp(0, lhs, rhs));
            if (rhs_pushed)
                pop();
        }
        auto [bit, sense] = compareBit(cond.binop);
        emitBc(sense == branch_if_true ? isa::Bo::IfTrue
                                       : isa::Bo::IfFalse,
               isa::crBit(0, bit), target);
        if (lhs_pushed)
            pop();
    }

    /**
     * Branch-context condition evaluation (what an optimizing SDTS does
     * for if/while/for): comparisons feed bc directly instead of
     * materializing a boolean, and &&/|| become branch chains.
     */
    void
    emitCondBranchIfFalse(const Expr &cond, Label target)
    {
        if (cond.kind == ExprKind::Binary) {
            if (isComparison(cond.binop)) {
                compareAndBranch(cond, false, target);
                return;
            }
            if (cond.binop == BinOp::LogAnd) {
                emitCondBranchIfFalse(*cond.lhs, target);
                emitCondBranchIfFalse(*cond.rhs, target);
                return;
            }
            if (cond.binop == BinOp::LogOr) {
                Label is_true = newLabel();
                emitCondBranchIfTrue(*cond.lhs, is_true);
                emitCondBranchIfFalse(*cond.rhs, target);
                bind(is_true);
                return;
            }
        }
        if (cond.kind == ExprKind::Unary && cond.unop == UnOp::Not) {
            emitCondBranchIfTrue(*cond.lhs, target);
            return;
        }
        bool pushed;
        uint8_t reg = evalOperand(cond, pushed);
        emit(isa::cmpi(0, reg, 0));
        emitBc(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq), target);
        if (pushed)
            pop();
    }

    /** Dual of emitCondBranchIfFalse. */
    void
    emitCondBranchIfTrue(const Expr &cond, Label target)
    {
        if (cond.kind == ExprKind::Binary) {
            if (isComparison(cond.binop)) {
                compareAndBranch(cond, true, target);
                return;
            }
            if (cond.binop == BinOp::LogOr) {
                emitCondBranchIfTrue(*cond.lhs, target);
                emitCondBranchIfTrue(*cond.rhs, target);
                return;
            }
            if (cond.binop == BinOp::LogAnd) {
                Label is_false = newLabel();
                emitCondBranchIfFalse(*cond.lhs, is_false);
                emitCondBranchIfTrue(*cond.rhs, target);
                bind(is_false);
                return;
            }
        }
        if (cond.kind == ExprKind::Unary && cond.unop == UnOp::Not) {
            emitCondBranchIfFalse(*cond.lhs, target);
            return;
        }
        bool pushed;
        uint8_t reg = evalOperand(cond, pushed);
        emit(isa::cmpi(0, reg, 0));
        emitBc(isa::Bo::IfFalse, isa::crBit(0, isa::CrBit::Eq), target);
        if (pushed)
            pop();
    }

    void
    emitStmt(const Stmt &stmt)
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const StmtPtr &inner : stmt.body)
                emitStmt(*inner);
            return;
          case StmtKind::LocalDecl:
            if (stmt.init) {
                const Location &loc = lookup(stmt.name, stmt.line);
                if (loc.kind == Location::Kind::CalleeReg &&
                    canEvalInto(*stmt.init)) {
                    evalInto(loc.reg, *stmt.init);
                    return;
                }
                bool pushed;
                uint8_t value = evalOperand(*stmt.init, pushed);
                emitStore(stmt.name, nullptr, value, stmt.line);
                if (pushed)
                    pop();
            }
            return;
          case StmtKind::Assign: {
            if (!stmt.index) {
                const Location &loc = lookup(stmt.name, stmt.line);
                if (loc.kind == Location::Kind::CalleeReg &&
                    canEvalInto(*stmt.cond)) {
                    evalInto(loc.reg, *stmt.cond);
                    return;
                }
            }
            bool pushed;
            uint8_t value = evalOperand(*stmt.cond, pushed);
            emitStore(stmt.name, stmt.index.get(), value, stmt.line);
            if (pushed)
                pop();
            return;
          }
          case StmtKind::ExprStmt:
            evalExpr(*stmt.cond);
            pop();
            return;
          case StmtKind::If: {
            Label else_label = newLabel();
            emitCondBranchIfFalse(*stmt.cond, else_label);
            emitStmt(*stmt.thenStmt);
            if (stmt.elseStmt) {
                Label end = newLabel();
                emitB(end);
                bind(else_label);
                emitStmt(*stmt.elseStmt);
                bind(end);
            } else {
                bind(else_label);
            }
            return;
          }
          case StmtKind::While: {
            Label top = newLabel();
            Label end = newLabel();
            bind(top);
            emitCondBranchIfFalse(*stmt.cond, end);
            loops_.push_back({end, top});
            emitStmt(*stmt.body[0]);
            loops_.pop_back();
            emitB(top);
            bind(end);
            return;
          }
          case StmtKind::DoWhile: {
            Label top = newLabel();
            Label cont = newLabel();
            Label end = newLabel();
            bind(top);
            loops_.push_back({end, cont});
            emitStmt(*stmt.body[0]);
            loops_.pop_back();
            bind(cont);
            emitCondBranchIfTrue(*stmt.cond, top);
            bind(end);
            return;
          }
          case StmtKind::For: {
            if (stmt.initStmt)
                emitStmt(*stmt.initStmt);
            Label top = newLabel();
            Label cont = newLabel();
            Label end = newLabel();
            bind(top);
            if (stmt.cond)
                emitCondBranchIfFalse(*stmt.cond, end);
            loops_.push_back({end, cont});
            emitStmt(*stmt.body[0]);
            loops_.pop_back();
            bind(cont);
            if (stmt.stepStmt)
                emitStmt(*stmt.stepStmt);
            emitB(top);
            bind(end);
            return;
          }
          case StmtKind::Return:
            if (stmt.cond) {
                bool pushed;
                uint8_t value = evalOperand(*stmt.cond, pushed);
                emit(isa::mr(regArg0, value));
                if (pushed)
                    pop();
            } else {
                emit(isa::li(regArg0, 0));
            }
            emitB(epilogueLabel_);
            return;
          case StmtKind::Break:
            CC_ASSERT(!loops_.empty(), "break outside loop/switch, line ",
                      stmt.line);
            emitB(loops_.back().breakLabel);
            return;
          case StmtKind::Continue: {
            // `continue` binds to the innermost *loop*, skipping any
            // enclosing switch scopes.
            for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
                if (it->continueLabel != UINT32_MAX) {
                    emitB(it->continueLabel);
                    return;
                }
            }
            CC_FATAL("continue outside loop at line ", stmt.line);
          }
          case StmtKind::Switch:
            emitSwitch(stmt);
            return;
        }
    }

    void
    emitSwitch(const Stmt &stmt)
    {
        if (stmt.cases.empty())
            CC_FATAL("switch with no cases, line ", stmt.line);
        int64_t min_value = stmt.cases[0].value;
        int64_t max_value = stmt.cases[0].value;
        for (const SwitchCase &arm : stmt.cases) {
            min_value = std::min<int64_t>(min_value, arm.value);
            max_value = std::max<int64_t>(max_value, arm.value);
        }
        int64_t range = max_value - min_value + 1;
        bool dense = stmt.cases.size() >= 4 &&
                     range <= 2 * static_cast<int64_t>(stmt.cases.size()) + 8;

        Label end = newLabel();
        Label default_label = newLabel();
        std::vector<Label> case_labels(stmt.cases.size());
        for (Label &label : case_labels)
            label = newLabel();

        uint8_t sel = evalExpr(*stmt.cond);

        if (dense) {
            // Jump-table dispatch (paper section 3.2.1: tables live in
            // .data and are patched after compression).
            if (min_value != 0)
                emit(isa::addi(sel, sel,
                               static_cast<int32_t>(-min_value)));
            if (range > 0xffff)
                CC_FATAL("switch range too large, line ", stmt.line);
            emit(isa::cmpli(0, sel, static_cast<int32_t>(range)));
            emitBc(isa::Bo::IfFalse, isa::crBit(0, isa::CrBit::Lt),
                   default_label);
            // Allocate the table in .data.
            uint32_t table_offset = static_cast<uint32_t>(data_.size());
            for (int64_t i = 0; i < range; ++i)
                for (int j = 0; j < 4; ++j)
                    data_.push_back(0);
            // Table slots: case label where present, else default.
            std::vector<Label> slot_labels(static_cast<size_t>(range),
                                           default_label);
            for (size_t i = 0; i < stmt.cases.size(); ++i)
                slot_labels[static_cast<size_t>(stmt.cases[i].value -
                                                min_value)] =
                    case_labels[i];
            for (int64_t i = 0; i < range; ++i)
                tableFixups_.push_back(
                    {table_offset + static_cast<uint32_t>(i) * 4,
                     slot_labels[static_cast<size_t>(i)]});
            emitGlobalHa(regTmp, static_cast<int32_t>(table_offset));
            uint32_t lo_index = emit(isa::addi(regTmp, regTmp, 0));
            dataLoFixups_.push_back({lo_index, table_offset});
            emit(isa::slwi(0, sel, 2));
            emit(isa::lwzx(regTmp, regTmp, 0));
            emit(isa::mtctr(regTmp));
            emit(isa::bctr());
        } else {
            // Compare-and-branch chain.
            for (size_t i = 0; i < stmt.cases.size(); ++i) {
                emit(isa::cmpi(0, sel, stmt.cases[i].value));
                emitBc(isa::Bo::IfTrue, isa::crBit(0, isa::CrBit::Eq),
                       case_labels[i]);
            }
            emitB(default_label);
        }
        pop();

        // Arms in source order with C fallthrough; default last.
        loops_.push_back({end, UINT32_MAX});
        for (size_t i = 0; i < stmt.cases.size(); ++i) {
            bind(case_labels[i]);
            for (const StmtPtr &inner : stmt.cases[i].body)
                emitStmt(*inner);
        }
        bind(default_label);
        for (const StmtPtr &inner : stmt.defaultBody)
            emitStmt(*inner);
        loops_.pop_back();
        bind(end);
    }

    // ---------------- members ----------------

    struct LoopLabels
    {
        Label breakLabel;
        Label continueLabel; //!< UINT32_MAX inside switch scopes
    };

    const TranslationUnit &unit_;
    CompileOptions options_;
    Program program_;
    std::vector<uint8_t> data_;

    std::unordered_map<std::string, Location> globals_;
    std::unordered_map<std::string, Location> locals_;
    std::unordered_map<std::string, uint32_t> functionEntry_;

    std::vector<uint32_t> labels_;
    std::vector<std::pair<uint32_t, Label>> labelFixups_;
    std::vector<std::pair<uint32_t, std::string>> callFixups_;
    std::vector<std::pair<uint32_t, uint32_t>> dataHaFixups_;
    std::vector<std::pair<uint32_t, uint32_t>> dataLoFixups_;
    std::vector<std::pair<uint32_t, Label>> tableFixups_;

    std::vector<LoopLabels> loops_;
    std::string currentFunction_;
    unsigned numCalleeUsed_ = 0;
    unsigned numCalleeSaved_ = 0;
    int32_t nextStackOffset_ = 8;
    int32_t spillOffset_ = 0;
    int32_t frameSize_ = 0;
    unsigned evalDepth_ = 0;
    unsigned savedBelow_ = 0;
    Label epilogueLabel_ = 0;

    /** Resolve jump-table fixups; must run before labels are cleared. */
    void
    resolveTables()
    {
        for (const auto &[offset, label] : tableFixups_) {
            uint32_t target = labels_[label];
            CC_ASSERT(target != UINT32_MAX, "unbound table label");
            program_.codeRelocs.push_back({offset, target});
        }
        tableFixups_.clear();
    }
};

} // namespace

link::ObjectModule
compileModuleUnit(const TranslationUnit &unit,
                  const std::string &module_name,
                  const CompileOptions &options)
{
    Emitter emitter(unit, options);
    return emitter.run(module_name);
}

link::ObjectModule
compileModule(const std::string &source, const std::string &module_name,
              const CompileOptions &options)
{
    return compileModuleUnit(parse(source), module_name, options);
}

link::ObjectModule
runtimeModule(const CompileOptions &options)
{
    return compileModule(runtimeSource(), "runtime", options);
}

Program
compileUnit(const TranslationUnit &unit, const CompileOptions &options)
{
    std::vector<link::ObjectModule> modules;
    modules.push_back(compileModuleUnit(unit, "main", options));
    if (options.includeRuntime)
        modules.push_back(runtimeModule(options));
    return link::linkModules(modules);
}

Program
compile(const std::string &source, const CompileOptions &options)
{
    return compileUnit(parse(source), options);
}

} // namespace codecomp::codegen
