#include "codegen/parser.hh"

#include "codegen/lexer.hh"
#include "support/logging.hh"

namespace codecomp::codegen {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

    TranslationUnit
    parseUnit()
    {
        TranslationUnit unit;
        while (!at(Tok::End)) {
            expect(Tok::KwInt);
            Token name = expect(Tok::Ident);
            if (at(Tok::LParen))
                unit.functions.push_back(parseFunction(name.text));
            else
                unit.globals.push_back(parseGlobalTail(name.text));
        }
        return unit;
    }

  private:
    const Token &peek() const { return toks_[pos_]; }
    bool at(Tok kind) const { return peek().kind == kind; }

    Token
    advance()
    {
        CC_ASSERT(pos_ < toks_.size(), "token stream overrun");
        return toks_[pos_++];
    }

    Token
    expect(Tok kind)
    {
        if (!at(kind))
            CC_FATAL("expected ", tokName(kind), " but found ",
                     tokName(peek().kind), " at line ", peek().line);
        return advance();
    }

    bool
    accept(Tok kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    int32_t
    parseSignedNumber()
    {
        bool negative = accept(Tok::Minus);
        Token num = expect(Tok::Number);
        return negative ? -num.value : num.value;
    }

    GlobalDecl
    parseGlobalTail(std::string name)
    {
        GlobalDecl global;
        global.name = std::move(name);
        if (accept(Tok::LBracket)) {
            Token size = expect(Tok::Number);
            if (size.value <= 0)
                CC_FATAL("array size must be positive, line ", size.line);
            global.arraySize = size.value;
            expect(Tok::RBracket);
            if (accept(Tok::Assign)) {
                expect(Tok::LBrace);
                if (!at(Tok::RBrace)) {
                    global.init.push_back(parseSignedNumber());
                    while (accept(Tok::Comma))
                        global.init.push_back(parseSignedNumber());
                }
                expect(Tok::RBrace);
                if (static_cast<int32_t>(global.init.size()) >
                    global.arraySize)
                    CC_FATAL("too many initializers for ", global.name);
            }
        } else if (accept(Tok::Assign)) {
            global.init.push_back(parseSignedNumber());
        }
        expect(Tok::Semi);
        return global;
    }

    Function
    parseFunction(std::string name)
    {
        Function fn;
        fn.name = std::move(name);
        fn.line = peek().line;
        expect(Tok::LParen);
        if (!at(Tok::RParen)) {
            do {
                expect(Tok::KwInt);
                fn.params.push_back(expect(Tok::Ident).text);
            } while (accept(Tok::Comma));
        }
        expect(Tok::RParen);
        expect(Tok::LBrace);
        while (!at(Tok::RBrace))
            fn.body.push_back(parseStmt());
        expect(Tok::RBrace);
        return fn;
    }

    StmtPtr
    makeStmt(StmtKind kind)
    {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = kind;
        stmt->line = peek().line;
        return stmt;
    }

    /** Assignment or expression, without the trailing semicolon;
     *  used by plain statements and by for-init/for-step. */
    StmtPtr
    parseSimple()
    {
        if (at(Tok::Ident)) {
            // Lookahead to distinguish assignment from expression.
            size_t save = pos_;
            Token name = advance();
            if (accept(Tok::Assign)) {
                auto stmt = makeStmt(StmtKind::Assign);
                stmt->name = name.text;
                stmt->cond = parseExpr();
                return stmt;
            }
            if (at(Tok::LBracket)) {
                advance();
                ExprPtr index = parseExpr();
                expect(Tok::RBracket);
                if (accept(Tok::Assign)) {
                    auto stmt = makeStmt(StmtKind::Assign);
                    stmt->name = name.text;
                    stmt->index = std::move(index);
                    stmt->cond = parseExpr();
                    return stmt;
                }
            }
            pos_ = save; // not an assignment; reparse as expression
        }
        auto stmt = makeStmt(StmtKind::ExprStmt);
        stmt->cond = parseExpr();
        return stmt;
    }

    StmtPtr
    parseStmt()
    {
        if (at(Tok::LBrace)) {
            auto stmt = makeStmt(StmtKind::Block);
            advance();
            while (!at(Tok::RBrace))
                stmt->body.push_back(parseStmt());
            expect(Tok::RBrace);
            return stmt;
        }
        if (accept(Tok::KwInt)) {
            auto stmt = makeStmt(StmtKind::LocalDecl);
            stmt->name = expect(Tok::Ident).text;
            if (accept(Tok::LBracket)) {
                Token size = expect(Tok::Number);
                if (size.value <= 0)
                    CC_FATAL("array size must be positive, line ",
                             size.line);
                stmt->arraySize = size.value;
                expect(Tok::RBracket);
            } else if (accept(Tok::Assign)) {
                stmt->init = parseExpr();
            }
            expect(Tok::Semi);
            return stmt;
        }
        if (accept(Tok::KwIf)) {
            auto stmt = makeStmt(StmtKind::If);
            expect(Tok::LParen);
            stmt->cond = parseExpr();
            expect(Tok::RParen);
            stmt->thenStmt = parseStmt();
            if (accept(Tok::KwElse))
                stmt->elseStmt = parseStmt();
            return stmt;
        }
        if (accept(Tok::KwWhile)) {
            auto stmt = makeStmt(StmtKind::While);
            expect(Tok::LParen);
            stmt->cond = parseExpr();
            expect(Tok::RParen);
            stmt->body.push_back(parseStmt());
            return stmt;
        }
        if (accept(Tok::KwDo)) {
            auto stmt = makeStmt(StmtKind::DoWhile);
            stmt->body.push_back(parseStmt());
            expect(Tok::KwWhile);
            expect(Tok::LParen);
            stmt->cond = parseExpr();
            expect(Tok::RParen);
            expect(Tok::Semi);
            return stmt;
        }
        if (accept(Tok::KwFor)) {
            auto stmt = makeStmt(StmtKind::For);
            expect(Tok::LParen);
            if (!at(Tok::Semi))
                stmt->initStmt = parseSimple();
            expect(Tok::Semi);
            if (!at(Tok::Semi))
                stmt->cond = parseExpr();
            expect(Tok::Semi);
            if (!at(Tok::RParen))
                stmt->stepStmt = parseSimple();
            expect(Tok::RParen);
            stmt->body.push_back(parseStmt());
            return stmt;
        }
        if (accept(Tok::KwReturn)) {
            auto stmt = makeStmt(StmtKind::Return);
            if (!at(Tok::Semi))
                stmt->cond = parseExpr();
            expect(Tok::Semi);
            return stmt;
        }
        if (accept(Tok::KwBreak)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Break);
        }
        if (accept(Tok::KwContinue)) {
            expect(Tok::Semi);
            return makeStmt(StmtKind::Continue);
        }
        if (accept(Tok::KwSwitch)) {
            auto stmt = makeStmt(StmtKind::Switch);
            expect(Tok::LParen);
            stmt->cond = parseExpr();
            expect(Tok::RParen);
            expect(Tok::LBrace);
            while (!at(Tok::RBrace)) {
                if (accept(Tok::KwCase)) {
                    SwitchCase arm;
                    arm.value = parseSignedNumber();
                    expect(Tok::Colon);
                    while (!at(Tok::KwCase) && !at(Tok::KwDefault) &&
                           !at(Tok::RBrace))
                        arm.body.push_back(parseStmt());
                    stmt->cases.push_back(std::move(arm));
                } else {
                    expect(Tok::KwDefault);
                    expect(Tok::Colon);
                    if (stmt->hasDefault)
                        CC_FATAL("duplicate default, line ", peek().line);
                    stmt->hasDefault = true;
                    while (!at(Tok::KwCase) && !at(Tok::KwDefault) &&
                           !at(Tok::RBrace))
                        stmt->defaultBody.push_back(parseStmt());
                }
            }
            expect(Tok::RBrace);
            return stmt;
        }

        StmtPtr stmt = parseSimple();
        expect(Tok::Semi);
        return stmt;
    }

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto expr = std::make_unique<Expr>();
        expr->kind = kind;
        expr->line = peek().line;
        return expr;
    }

    ExprPtr
    makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs)
    {
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::Binary;
        expr->binop = op;
        expr->lhs = std::move(lhs);
        expr->rhs = std::move(rhs);
        return expr;
    }

    ExprPtr parseExpr() { return parseLogOr(); }

    ExprPtr
    parseLogOr()
    {
        ExprPtr lhs = parseLogAnd();
        while (accept(Tok::PipePipe))
            lhs = makeBinary(BinOp::LogOr, std::move(lhs), parseLogAnd());
        return lhs;
    }

    ExprPtr
    parseLogAnd()
    {
        ExprPtr lhs = parseBitOr();
        while (accept(Tok::AmpAmp))
            lhs = makeBinary(BinOp::LogAnd, std::move(lhs), parseBitOr());
        return lhs;
    }

    ExprPtr
    parseBitOr()
    {
        ExprPtr lhs = parseBitXor();
        while (accept(Tok::Pipe))
            lhs = makeBinary(BinOp::Or, std::move(lhs), parseBitXor());
        return lhs;
    }

    ExprPtr
    parseBitXor()
    {
        ExprPtr lhs = parseBitAnd();
        while (accept(Tok::Caret))
            lhs = makeBinary(BinOp::Xor, std::move(lhs), parseBitAnd());
        return lhs;
    }

    ExprPtr
    parseBitAnd()
    {
        ExprPtr lhs = parseEquality();
        while (accept(Tok::Amp))
            lhs = makeBinary(BinOp::And, std::move(lhs), parseEquality());
        return lhs;
    }

    ExprPtr
    parseEquality()
    {
        ExprPtr lhs = parseRelational();
        for (;;) {
            if (accept(Tok::EqEq))
                lhs = makeBinary(BinOp::Eq, std::move(lhs),
                                 parseRelational());
            else if (accept(Tok::NotEq))
                lhs = makeBinary(BinOp::Ne, std::move(lhs),
                                 parseRelational());
            else
                return lhs;
        }
    }

    ExprPtr
    parseRelational()
    {
        ExprPtr lhs = parseShift();
        for (;;) {
            if (accept(Tok::Lt))
                lhs = makeBinary(BinOp::Lt, std::move(lhs), parseShift());
            else if (accept(Tok::Le))
                lhs = makeBinary(BinOp::Le, std::move(lhs), parseShift());
            else if (accept(Tok::Gt))
                lhs = makeBinary(BinOp::Gt, std::move(lhs), parseShift());
            else if (accept(Tok::Ge))
                lhs = makeBinary(BinOp::Ge, std::move(lhs), parseShift());
            else
                return lhs;
        }
    }

    ExprPtr
    parseShift()
    {
        ExprPtr lhs = parseAdditive();
        for (;;) {
            if (accept(Tok::Shl))
                lhs = makeBinary(BinOp::Shl, std::move(lhs),
                                 parseAdditive());
            else if (accept(Tok::Shr))
                lhs = makeBinary(BinOp::Shr, std::move(lhs),
                                 parseAdditive());
            else
                return lhs;
        }
    }

    ExprPtr
    parseAdditive()
    {
        ExprPtr lhs = parseMultiplicative();
        for (;;) {
            if (accept(Tok::Plus))
                lhs = makeBinary(BinOp::Add, std::move(lhs),
                                 parseMultiplicative());
            else if (accept(Tok::Minus))
                lhs = makeBinary(BinOp::Sub, std::move(lhs),
                                 parseMultiplicative());
            else
                return lhs;
        }
    }

    ExprPtr
    parseMultiplicative()
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            if (accept(Tok::Star))
                lhs = makeBinary(BinOp::Mul, std::move(lhs), parseUnary());
            else if (accept(Tok::Slash))
                lhs = makeBinary(BinOp::Div, std::move(lhs), parseUnary());
            else if (accept(Tok::Percent))
                lhs = makeBinary(BinOp::Mod, std::move(lhs), parseUnary());
            else
                return lhs;
        }
    }

    ExprPtr
    parseUnary()
    {
        if (accept(Tok::Minus)) {
            // Fold -N literals immediately.
            ExprPtr operand = parseUnary();
            if (operand->kind == ExprKind::IntLit) {
                operand->value = -operand->value;
                return operand;
            }
            auto expr = makeExpr(ExprKind::Unary);
            expr->unop = UnOp::Neg;
            expr->lhs = std::move(operand);
            return expr;
        }
        if (accept(Tok::Bang)) {
            auto expr = makeExpr(ExprKind::Unary);
            expr->unop = UnOp::Not;
            expr->lhs = parseUnary();
            return expr;
        }
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        if (at(Tok::Number)) {
            auto expr = makeExpr(ExprKind::IntLit);
            expr->value = advance().value;
            return expr;
        }
        if (accept(Tok::LParen)) {
            ExprPtr expr = parseExpr();
            expect(Tok::RParen);
            return expr;
        }
        Token name = expect(Tok::Ident);
        if (accept(Tok::LParen)) {
            auto expr = makeExpr(ExprKind::Call);
            expr->name = name.text;
            if (!at(Tok::RParen)) {
                do {
                    expr->args.push_back(parseExpr());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen);
            return expr;
        }
        if (accept(Tok::LBracket)) {
            auto expr = makeExpr(ExprKind::Index);
            expr->name = name.text;
            expr->lhs = parseExpr();
            expect(Tok::RBracket);
            return expr;
        }
        auto expr = makeExpr(ExprKind::Var);
        expr->name = name.text;
        return expr;
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

TranslationUnit
parse(const std::string &source)
{
    return Parser(lex(source)).parseUnit();
}

} // namespace codecomp::codegen
