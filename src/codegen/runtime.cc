#include "codegen/codegen.hh"

namespace codecomp::codegen {

/**
 * The MiniC runtime library. Every benchmark links it statically, the
 * way the paper's SPEC binaries statically linked libc -- so library
 * code participates in the compression statistics.
 */
const char *
runtimeSource()
{
    return R"(
int __lcg_state = 12345;

int rt_srand(int seed) {
    __lcg_state = seed;
    return 0;
}

int rt_rand() {
    __lcg_state = __lcg_state * 1103515245 + 12345;
    return (__lcg_state >> 16) & 32767;
}

int rt_abs(int x) {
    if (x < 0) return -x;
    return x;
}

int rt_min(int a, int b) {
    if (a < b) return a;
    return b;
}

int rt_max(int a, int b) {
    if (a > b) return a;
    return b;
}

int rt_sign(int x) {
    if (x < 0) return -1;
    if (x > 0) return 1;
    return 0;
}

int rt_clamp(int x, int lo, int hi) {
    if (x < lo) return lo;
    if (x > hi) return hi;
    return x;
}

int rt_gcd(int a, int b) {
    int t;
    a = rt_abs(a);
    b = rt_abs(b);
    while (b != 0) {
        t = a % b;
        a = b;
        b = t;
    }
    return a;
}

int rt_ilog2(int x) {
    int n = 0;
    while (x > 1) {
        x = x >> 1;
        n = n + 1;
    }
    return n;
}

int rt_popcount(int x) {
    int n = 0;
    int i;
    for (i = 0; i < 32; i = i + 1) {
        n = n + (x & 1);
        x = (x >> 1) & 0x7fffffff;
    }
    return n;
}

int rt_isqrt(int x) {
    int r = 0;
    if (x <= 0) return 0;
    r = x;
    while (r * r > x) {
        r = (r + x / r) / 2;
    }
    return r;
}

int rt_pow(int base, int exp) {
    int r = 1;
    while (exp > 0) {
        if (exp & 1) r = r * base;
        base = base * base;
        exp = exp >> 1;
    }
    return r;
}

int rt_hash(int x) {
    x = x ^ (x >> 16) & 0xffff;
    x = x * 73244475;
    x = x ^ (x >> 13) & 0x7ffff;
    x = x * 73244475;
    x = x ^ (x >> 16) & 0xffff;
    return x;
}

int rt_fib(int n) {
    int a = 0;
    int b = 1;
    int t;
    while (n > 0) {
        t = a + b;
        a = b;
        b = t;
        n = n - 1;
    }
    return a;
}

int rt_print_pair(int a, int b) {
    puti(a);
    puti(b);
    return 0;
}

int rt_checksum(int acc, int value) {
    acc = acc * 31 + value;
    acc = acc ^ (acc >> 7) & 0x1ffffff;
    return acc;
}
)";
}

} // namespace codecomp::codegen
