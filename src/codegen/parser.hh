/**
 * @file
 * Recursive-descent parser for MiniC.
 */

#ifndef CODECOMP_CODEGEN_PARSER_HH
#define CODECOMP_CODEGEN_PARSER_HH

#include <string>

#include "codegen/ast.hh"

namespace codecomp::codegen {

/** Parse MiniC source into an AST; fatal on syntax errors. */
TranslationUnit parse(const std::string &source);

} // namespace codecomp::codegen

#endif // CODECOMP_CODEGEN_PARSER_HH
