/**
 * @file
 * Common machinery for the synthetic benchmark generators.
 *
 * Each SPEC CINT95 substitute combines a hand-written "core" (the
 * algorithmic personality of its namesake: an LZW coder for compress, a
 * decode-dispatch interpreter for m88ksim, ...) with bulk "filler" code
 * produced here: pools of leaf/mid/dispatch functions whose structure
 * mimics what an SDTS compiler sees in large C programs. The filler is
 * what gives each program its SPEC-like static size and redundancy
 * profile; the core is what it executes.
 */

#ifndef CODECOMP_WORKLOADS_GENERATOR_HH
#define CODECOMP_WORKLOADS_GENERATOR_HH

#include <cstdint>
#include <string>

namespace codecomp::workloads {

/** Shape parameters for a filler-code pool. */
struct GenSpec
{
    uint64_t seed = 1;
    int leafFuncs = 10;      //!< straight-line arithmetic functions
    int midFuncs = 10;       //!< array-loop functions that call leaves
    int dispatchFuncs = 2;   //!< switch dispatchers over the mids
    int switchCases = 8;     //!< cases per dispatcher
    int arrays = 4;          //!< global work arrays
    int arraySize = 64;
    int stmtsPerLeaf = 6;
    int stmtsPerMid = 5;
    int exprDepth = 3;       //!< max binary-expression nesting
    int loopTrip = 32;       //!< mid-function loop bound (<= arraySize)
};

/** Output of the filler generator. */
struct FillerCode
{
    std::string definitions; //!< globals + functions, MiniC source
    std::string mainStmts;   //!< statements for main(); update `acc`
};

/**
 * Generate a filler pool. @p prefix namespaces all identifiers;
 * @p iters is how many dispatcher calls main should make. The emitted
 * mainStmts assume `int acc;` and `int <prefix>_it;` are in scope and
 * update `acc` via rt_checksum.
 */
FillerCode generateFiller(const GenSpec &spec, const std::string &prefix,
                          int iters);

/**
 * One very large function: a while loop whose body is ~2 * @p stmts
 * instructions of register arithmetic. Large compiler-style functions
 * like these are what give real programs conditional branches that
 * outrun their offset fields at finer target granularity (paper
 * Table 1); the loop's exit branch spans the whole body. The function
 * runs exactly two iterations, so it is cheap to execute.
 */
std::string bigLoopFunction(const std::string &name, int stmts,
                            uint64_t seed);

} // namespace codecomp::workloads

#endif // CODECOMP_WORKLOADS_GENERATOR_HH
