/**
 * @file
 * `ijpeg` substitute: integer 8x8 block transforms with long
 * straight-line butterfly code plus quantization/zigzag loops, echoing
 * SPEC 132.ijpeg's DCT kernels.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

namespace {

/** Straight-line butterfly pass over one row/column (unrolled). */
std::string
butterfly(const std::string &fn_name, const std::string &stride_term)
{
    std::string src = "int " + fn_name + "(int base) {\n";
    auto at = [&stride_term](int i) {
        return "jp_block[base + " + stride_term + std::to_string(i) + "]";
    };
    src += "    int s0 = " + at(0) + " + " + at(7) + ";\n";
    src += "    int s1 = " + at(1) + " + " + at(6) + ";\n";
    src += "    int s2 = " + at(2) + " + " + at(5) + ";\n";
    src += "    int s3 = " + at(3) + " + " + at(4) + ";\n";
    src += "    int d0 = " + at(0) + " - " + at(7) + ";\n";
    src += "    int d1 = " + at(1) + " - " + at(6) + ";\n";
    src += "    int d2 = " + at(2) + " - " + at(5) + ";\n";
    src += "    int d3 = " + at(3) + " - " + at(4) + ";\n";
    src += "    " + at(0) + " = s0 + s3;\n";
    src += "    " + at(4) + " = s0 - s3;\n";
    src += "    " + at(2) + " = s1 + s2;\n";
    src += "    " + at(6) + " = s1 - s2;\n";
    src += "    " + at(1) + " = (d0 * 362 + d3 * 196) >> 8;\n";
    src += "    " + at(7) + " = (d0 * 196 - d3 * 362) >> 8;\n";
    src += "    " + at(3) + " = (d1 * 473 + d2 * 98) >> 8;\n";
    src += "    " + at(5) + " = (d1 * 98 - d2 * 473) >> 8;\n";
    src += "    return s0 + s1 + s2 + s3;\n}\n";
    return src;
}

} // namespace

std::string
sourceIjpeg(int scale)
{
    GenSpec spec;
    spec.seed = 0x19e901;
    spec.leafFuncs = 34 * scale;
    spec.midFuncs = 46 * scale;
    spec.dispatchFuncs = 2;
    spec.switchCases = 10;
    spec.arrays = 4;
    spec.arraySize = 64;
    spec.loopTrip = 32;
    spec.stmtsPerLeaf = 8;
    FillerCode filler = generateFiller(spec, "jpf", 10);

    std::string src = R"(
// ---- 8x8 integer transform core ----
int jp_block[64];
int jp_quant[64];
int jp_zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};
int jp_coeff[64];

int jp_fill_block(int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < 64; i = i + 1)
        jp_block[i] = (rt_rand() & 255) - 128;
    return 0;
}

int jp_init_quant() {
    int i;
    for (i = 0; i < 64; i = i + 1)
        jp_quant[i] = 8 + ((i * 3) >> 2);
    return 0;
}
)";
    src += butterfly("jp_row_pass", "");
    src += butterfly("jp_col_pass", "8 * ");
    src += R"(
int jp_transform() {
    int i;
    int acc = 0;
    for (i = 0; i < 8; i = i + 1)
        acc = acc + jp_row_pass(i * 8);
    for (i = 0; i < 8; i = i + 1)
        acc = acc + jp_col_pass(i);
    return acc;
}

int jp_quantize() {
    int i;
    int nonzero = 0;
    for (i = 0; i < 64; i = i + 1) {
        int q = jp_block[i] / jp_quant[i];
        jp_coeff[jp_zigzag[i]] = q;
        if (q != 0) nonzero = nonzero + 1;
    }
    return nonzero;
}

int jp_rle_cost() {
    int i;
    int run = 0;
    int cost = 0;
    for (i = 0; i < 64; i = i + 1) {
        if (jp_coeff[i] == 0) {
            run = run + 1;
        } else {
            cost = cost + 4 + run + rt_ilog2(rt_abs(jp_coeff[i]) + 1);
            run = 0;
        }
    }
    return cost;
}
)";
    src += filler.definitions;
    src += R"(
int main() {
    int acc = 1;
    int jpf_it;
    int block;
    jp_init_quant();
    for (block = 0; block < 10; block = block + 1) {
        jp_fill_block(9000 + block * 13);
        acc = rt_checksum(acc, jp_transform());
        acc = rt_checksum(acc, jp_quantize());
        acc = rt_checksum(acc, jp_rle_cost());
    }
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
