/**
 * @file
 * `li` substitute: a cons-cell expression interpreter with recursive
 * evaluation over generated trees, echoing SPEC 130.li (xlisp).
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourceLi(int scale)
{
    GenSpec spec;
    spec.seed = 0x11501;
    spec.leafFuncs = 24 * scale;
    spec.midFuncs = 30 * scale;
    spec.dispatchFuncs = 2;
    spec.switchCases = 8;
    spec.arrays = 3;
    spec.arraySize = 48;
    spec.loopTrip = 24;
    FillerCode filler = generateFiller(spec, "lif", 10);

    std::string src = R"(
// ---- cons-cell interpreter core ----
// Cell encoding: tag 0 = number (car holds value), tags 1..5 = ops
// (add sub mul min max) with car/cdr as children.
int li_tag[2048];
int li_car[2048];
int li_cdr[2048];
int li_free = 0;
int li_gc_count = 0;

int li_cons(int tag, int a, int d) {
    if (li_free >= 2048) {
        // "GC": wrap the heap (trees are rebuilt each round anyway).
        li_free = 0;
        li_gc_count = li_gc_count + 1;
    }
    li_tag[li_free] = tag;
    li_car[li_free] = a;
    li_cdr[li_free] = d;
    li_free = li_free + 1;
    return li_free - 1;
}

int li_num(int v) { return li_cons(0, v, 0); }

// Build a random expression tree of the given depth; returns cell.
int li_gen(int depth) {
    if (depth <= 0) return li_num(rt_rand() & 63);
    int op = 1 + rt_rand() % 5;
    int a = li_gen(depth - 1);
    int d = li_gen(depth - 1);
    return li_cons(op, a, d);
}

int li_eval(int cell) {
    int tag = li_tag[cell];
    if (tag == 0) return li_car[cell];
    int a = li_eval(li_car[cell]);
    int d = li_eval(li_cdr[cell]);
    switch (tag) {
      case 1: return a + d;
      case 2: return a - d;
      case 3: return (a & 1023) * (d & 1023);
      case 4: return rt_min(a, d);
      case 5: return rt_max(a, d);
      default: return 0;
    }
}

int li_count_nodes(int cell) {
    if (li_tag[cell] == 0) return 1;
    return 1 + li_count_nodes(li_car[cell]) + li_count_nodes(li_cdr[cell]);
}

int li_depth(int cell) {
    if (li_tag[cell] == 0) return 0;
    return 1 + rt_max(li_depth(li_car[cell]), li_depth(li_cdr[cell]));
}

// Fold a list of trees: cons each onto a running list, then sum.
int li_list[32];
int li_fold(int n) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i = i + 1)
        acc = rt_checksum(acc, li_eval(li_list[i]));
    return acc;
}
)";
    src += filler.definitions;
    src += R"(
int main() {
    int acc = 1;
    int lif_it;
    int round;
    rt_srand(31415);
    for (round = 0; round < 6; round = round + 1) {
        int i;
        li_free = 0;
        for (i = 0; i < 12; i = i + 1)
            li_list[i] = li_gen(2 + (i & 3));
        acc = rt_checksum(acc, li_fold(12));
        acc = rt_checksum(acc, li_count_nodes(li_list[0]));
        acc = rt_checksum(acc, li_depth(li_list[11]));
    }
    puti(li_gc_count);
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
