/**
 * @file
 * `perl` substitute: string hashing, naive pattern matching, and a
 * bytecode interpreter loop over "string" byte arrays -- the text-heavy
 * interpreter shape of SPEC 134.perl.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourcePerl(int scale)
{
    GenSpec spec;
    spec.seed = 0x9e4101;
    spec.leafFuncs = 38 * scale;
    spec.midFuncs = 48 * scale;
    spec.dispatchFuncs = 3;
    spec.switchCases = 14;
    spec.arrays = 4;
    spec.arraySize = 72;
    spec.loopTrip = 24;
    FillerCode filler = generateFiller(spec, "plf", 10);

    std::string src = R"(
// ---- text/interpreter core ----
int pl_text[1024];
int pl_pat[8];
int pl_hashtab[128];
int pl_prog[256];
int pl_vars[16];

int pl_gen_text(int n, int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < n; i = i + 1) {
        int r = rt_rand() & 31;
        // Mostly lowercase letters with spaces sprinkled in.
        if (r < 26) pl_text[i] = 'a' + r;
        else pl_text[i] = ' ';
    }
    return n;
}

int pl_hash_string(int start, int len) {
    int h = 5381;
    int i;
    for (i = 0; i < len; i = i + 1)
        h = h * 33 + pl_text[start + i];
    return h & 0x7fffffff;
}

int pl_hash_words(int n) {
    int i;
    int start = 0;
    int count = 0;
    for (i = 0; i < 128; i = i + 1) pl_hashtab[i] = 0;
    for (i = 0; i < n; i = i + 1) {
        if (pl_text[i] == ' ') {
            if (i > start) {
                int h = pl_hash_string(start, i - start) & 127;
                pl_hashtab[h] = pl_hashtab[h] + 1;
                count = count + 1;
            }
            start = i + 1;
        }
    }
    return count;
}

int pl_match_count(int n, int plen) {
    int i;
    int j;
    int count = 0;
    for (i = 0; i + plen <= n; i = i + 1) {
        int ok = 1;
        for (j = 0; j < plen; j = j + 1)
            if (pl_text[i + j] != pl_pat[j]) ok = 0;
        if (ok) count = count + 1;
    }
    return count;
}

// Tiny bytecode VM: op(8) | a(8) | b(8) | c(8).
int pl_gen_prog(int n, int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < n; i = i + 1) {
        int op = rt_rand() % 9;
        int a = rt_rand() & 15;
        int b = rt_rand() & 15;
        int c = rt_rand() & 255;
        pl_prog[i] = (op << 24) | (a << 16) | (b << 8) | c;
    }
    return n;
}

int pl_interp(int n) {
    int ip;
    int steps = 0;
    for (ip = 0; ip < n; ip = ip + 1) {
        int insn = pl_prog[ip];
        int op = (insn >> 24) & 255;
        int a = (insn >> 16) & 15;
        int b = (insn >> 8) & 15;
        int c = insn & 255;
        switch (op) {
          case 0: pl_vars[a] = c; break;
          case 1: pl_vars[a] = pl_vars[b] + c; break;
          case 2: pl_vars[a] = pl_vars[a] + pl_vars[b]; break;
          case 3: pl_vars[a] = pl_vars[a] ^ pl_vars[b]; break;
          case 4: pl_vars[a] = pl_vars[b] * 17 + 255; break;
          case 5: pl_vars[a] = pl_text[(pl_vars[b] + c) & 1023]; break;
          case 6: pl_vars[a] = rt_max(pl_vars[a], pl_vars[b]); break;
          case 7: pl_vars[a] = pl_vars[b] >> (c & 7); break;
          default: pl_vars[a] = pl_vars[b] & c; break;
        }
        steps = steps + 1;
    }
    return steps;
}

int pl_vars_checksum() {
    int i;
    int acc = 11;
    for (i = 0; i < 16; i = i + 1)
        acc = rt_checksum(acc, pl_vars[i]);
    return acc;
}
)";
    src += filler.definitions;
    src += bigLoopFunction("plx_big0", 560, 0x9e4110);
    src += R"(
int main() {
    int acc = 1;
    int plf_it;
    int round;
    for (round = 0; round < 4; round = round + 1) {
        pl_gen_text(1024, 555 + round);
        acc = rt_checksum(acc, pl_hash_words(1024));
        pl_pat[0] = 't'; pl_pat[1] = 'h'; pl_pat[2] = 'e';
        acc = rt_checksum(acc, pl_match_count(1024, 3));
        pl_gen_prog(256, 999 + round);
        pl_interp(256);
        acc = rt_checksum(acc, pl_vars_checksum());
    }
    acc = rt_checksum(acc, plx_big0(acc));
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
