/**
 * @file
 * `gcc` substitute: the largest program in the suite, as 126.gcc is in
 * CINT95. Pairs a stack-machine constant folder (switch-driven, the way
 * a compiler walks insn codes) with a very large filler pool of
 * functions and dispatch switches.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourceGcc(int scale)
{
    // Two filler pools with different shapes, mimicking distinct
    // compiler passes.
    GenSpec front;
    front.seed = 0x6cc01;
    front.leafFuncs = 70 * scale;
    front.midFuncs = 75 * scale;
    front.dispatchFuncs = 6;
    front.switchCases = 24;
    front.arrays = 6;
    front.arraySize = 96;
    front.loopTrip = 24;
    FillerCode filler_a = generateFiller(front, "gca", 12);

    GenSpec back;
    back.seed = 0x6cc02;
    back.leafFuncs = 60 * scale;
    back.midFuncs = 68 * scale;
    back.dispatchFuncs = 5;
    back.switchCases = 20;
    back.arrays = 5;
    back.arraySize = 80;
    back.stmtsPerLeaf = 8;
    back.stmtsPerMid = 6;
    back.loopTrip = 20;
    FillerCode filler_b = generateFiller(back, "gcb", 10);

    std::string src = R"(
// ---- RTL-ish stack-machine folder core ----
int gfold_code[512];
int gfold_stack[64];
int gfold_sp = 0;

int gfold_push(int v) {
    if (gfold_sp < 64) {
        gfold_stack[gfold_sp] = v;
        gfold_sp = gfold_sp + 1;
    }
    return v;
}

int gfold_pop() {
    if (gfold_sp > 0) {
        gfold_sp = gfold_sp - 1;
        return gfold_stack[gfold_sp];
    }
    return 0;
}

int gfold_gen(int n, int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < n; i = i + 1) {
        int op = rt_rand() % 12;
        // ops 0..7 binary/unary; 8..11 push-literal (packed op|imm<<4)
        if (op >= 8) gfold_code[i] = 8 + ((rt_rand() & 1023) << 4);
        else gfold_code[i] = op;
    }
    // Seed the stack so binary ops always have operands.
    gfold_code[0] = 8 + (5 << 4);
    gfold_code[1] = 8 + (9 << 4);
    return n;
}

int gfold_eval(int n) {
    int i;
    int acc = 0;
    gfold_sp = 0;
    gfold_push(1);
    gfold_push(2);
    for (i = 0; i < n; i = i + 1) {
        int insn = gfold_code[i];
        int op = insn & 15;
        switch (op) {
          case 0: gfold_push(gfold_pop() + gfold_pop()); break;
          case 1: gfold_push(gfold_pop() - gfold_pop()); break;
          case 2: gfold_push(gfold_pop() * 3 + 1); break;
          case 3: gfold_push(gfold_pop() & gfold_pop()); break;
          case 4: gfold_push(gfold_pop() | gfold_pop()); break;
          case 5: gfold_push(gfold_pop() ^ gfold_pop()); break;
          case 6: gfold_push(gfold_pop() >> 1); break;
          case 7: gfold_push(-gfold_pop()); break;
          default: gfold_push(insn >> 4); break;
        }
        if (gfold_sp > 60) {
            acc = rt_checksum(acc, gfold_pop());
            gfold_sp = 2;
        }
    }
    while (gfold_sp > 0) acc = rt_checksum(acc, gfold_pop());
    return acc;
}
)";
    src += filler_a.definitions;
    src += filler_b.definitions;
    // Giant compiler-style functions (gcc's largest functions span
    // thousands of instructions); their loop-exit branches outrun the
    // 14-bit bc offset field at finer codeword granularity (Table 1).
    src += bigLoopFunction("gcx_big0", 2700, 0x6cc10);
    src += bigLoopFunction("gcx_big1", 1000, 0x6cc11);
    src += bigLoopFunction("gcx_big2", 520, 0x6cc12);
    src += R"(
int main() {
    int acc = 1;
    int gca_it;
    int gcb_it;
    int pass;
    for (pass = 0; pass < 2; pass = pass + 1) {
        gfold_gen(512, 4242 + pass);
        acc = rt_checksum(acc, gfold_eval(512));
    }
    acc = rt_checksum(acc, gcx_big0(acc));
    acc = rt_checksum(acc, gcx_big1(acc));
    acc = rt_checksum(acc, gcx_big2(acc));
)";
    src += filler_a.mainStmts;
    src += filler_b.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
