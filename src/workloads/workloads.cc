#include "workloads/workloads.hh"

#include "codegen/codegen.hh"
#include "support/logging.hh"

namespace codecomp::workloads {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "compress", "gcc", "go", "ijpeg",
        "li", "m88ksim", "perl", "vortex",
    };
    return names;
}

std::string
benchmarkSource(const std::string &name, int scale)
{
    CC_ASSERT(scale >= 1, "scale must be positive");
    if (name == "compress")
        return sourceCompress(scale);
    if (name == "gcc")
        return sourceGcc(scale);
    if (name == "go")
        return sourceGo(scale);
    if (name == "ijpeg")
        return sourceIjpeg(scale);
    if (name == "li")
        return sourceLi(scale);
    if (name == "m88ksim")
        return sourceM88ksim(scale);
    if (name == "perl")
        return sourcePerl(scale);
    if (name == "vortex")
        return sourceVortex(scale);
    CC_FATAL("unknown benchmark '", name, "'");
}

Program
buildBenchmark(const std::string &name, int scale)
{
    return codegen::compile(benchmarkSource(name, scale));
}

} // namespace codecomp::workloads
