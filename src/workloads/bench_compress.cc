/**
 * @file
 * `compress` substitute: an LZW-style dictionary coder over a
 * pseudo-random symbol stream, echoing SPEC 129.compress. The smallest
 * program in the suite, as in CINT95 (Table 2: fewest codewords).
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourceCompress(int scale)
{
    GenSpec spec;
    spec.seed = 0xc0401;
    spec.leafFuncs = 12 * scale;
    spec.midFuncs = 14 * scale;
    spec.dispatchFuncs = 2;
    spec.switchCases = 4;
    spec.arrays = 2;
    spec.arraySize = 64;
    spec.loopTrip = 24;
    FillerCode filler = generateFiller(spec, "cz", 12);

    std::string src = R"(
// ---- LZW-ish coder core ----
int czc_input[512];
int czc_hash[1024];
int czc_codes[1024];
int czc_output[600];
int czc_outlen = 0;
int czc_nextcode = 16;

int czc_fill_input(int n, int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < n; i = i + 1) {
        // 16-symbol alphabet with a skewed distribution, so digram
        // patterns repeat the way bytes of real text do.
        int r = rt_rand() & 255;
        if (r < 128) czc_input[i] = r & 3;
        else if (r < 200) czc_input[i] = 4 + (r & 3);
        else czc_input[i] = 8 + (r & 7);
    }
    return n;
}

int czc_reset() {
    int i;
    for (i = 0; i < 1024; i = i + 1) {
        czc_hash[i] = -1;
        czc_codes[i] = 0;
    }
    czc_outlen = 0;
    czc_nextcode = 16;
    return 0;
}

int czc_probe(int prefix, int symbol) {
    int h = ((prefix << 4) ^ (symbol * 37)) & 1023;
    int steps = 0;
    while (steps < 1024) {
        if (czc_hash[h] == -1) return h;
        if (czc_hash[h] == (prefix << 8) + symbol) return h;
        h = (h + 61) & 1023;
        steps = steps + 1;
    }
    return h;
}

int czc_emit(int code) {
    if (czc_outlen < 600) {
        czc_output[czc_outlen] = code;
        czc_outlen = czc_outlen + 1;
    }
    return code;
}

int czc_compress(int n) {
    int i;
    int prefix = czc_input[0];
    for (i = 1; i < n; i = i + 1) {
        int symbol = czc_input[i];
        int slot = czc_probe(prefix, symbol);
        if (czc_hash[slot] == (prefix << 8) + symbol) {
            prefix = czc_codes[slot];
        } else {
            czc_emit(prefix);
            if (czc_nextcode < 1024) {
                czc_hash[slot] = (prefix << 8) + symbol;
                czc_codes[slot] = czc_nextcode;
                czc_nextcode = czc_nextcode + 1;
            }
            prefix = symbol;
        }
    }
    czc_emit(prefix);
    return czc_outlen;
}

int czc_checksum() {
    int i;
    int acc = 7;
    for (i = 0; i < czc_outlen; i = i + 1)
        acc = rt_checksum(acc, czc_output[i]);
    return acc;
}
)";
    src += filler.definitions;
    src += R"(
int main() {
    int acc = 1;
    int cz_it;
    int round;
    for (round = 0; round < 3; round = round + 1) {
        czc_fill_input(512, 1000 + round * 77);
        czc_reset();
        int outlen = czc_compress(512);
        puti(outlen);
        acc = rt_checksum(acc, czc_checksum());
    }
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
