/**
 * @file
 * `go` substitute: board-scanning evaluation functions over a 19x19
 * grid (influence maps, group liberties, territory scoring), echoing
 * SPEC 099.go's pattern-heavy evaluation code.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourceGo(int scale)
{
    GenSpec spec;
    spec.seed = 0x90901;
    spec.leafFuncs = 40 * scale;
    spec.midFuncs = 55 * scale;
    spec.dispatchFuncs = 4;
    spec.switchCases = 12;
    spec.arrays = 4;
    spec.arraySize = 96;
    spec.loopTrip = 32;
    FillerCode filler = generateFiller(spec, "gob", 10);

    std::string src = R"(
// ---- board evaluation core (19x19, row-major, 0=empty 1/2=stones) ----
int go_board[361];
int go_infl[361];
int go_libs[361];

int go_at(int row, int col) {
    if (row < 0) return 3;
    if (row >= 19) return 3;
    if (col < 0) return 3;
    if (col >= 19) return 3;
    return go_board[row * 19 + col];
}

int go_setup(int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < 361; i = i + 1) {
        int r = rt_rand() % 10;
        if (r < 3) go_board[i] = 1;
        else if (r < 6) go_board[i] = 2;
        else go_board[i] = 0;
    }
    return 0;
}

int go_influence() {
    int row;
    int col;
    int total = 0;
    for (row = 0; row < 19; row = row + 1) {
        for (col = 0; col < 19; col = col + 1) {
            int v = 0;
            int c = go_at(row, col);
            if (c == 1) v = v + 8;
            if (c == 2) v = v - 8;
            int u = go_at(row - 1, col);
            int d = go_at(row + 1, col);
            int l = go_at(row, col - 1);
            int r = go_at(row, col + 1);
            if (u == 1) v = v + 2;
            if (u == 2) v = v - 2;
            if (d == 1) v = v + 2;
            if (d == 2) v = v - 2;
            if (l == 1) v = v + 2;
            if (l == 2) v = v - 2;
            if (r == 1) v = v + 2;
            if (r == 2) v = v - 2;
            go_infl[row * 19 + col] = v;
            total = total + v;
        }
    }
    return total;
}

int go_liberties() {
    int row;
    int col;
    int total = 0;
    for (row = 0; row < 19; row = row + 1) {
        for (col = 0; col < 19; col = col + 1) {
            int c = go_at(row, col);
            int libs = 0;
            if (c == 1 || c == 2) {
                if (go_at(row - 1, col) == 0) libs = libs + 1;
                if (go_at(row + 1, col) == 0) libs = libs + 1;
                if (go_at(row, col - 1) == 0) libs = libs + 1;
                if (go_at(row, col + 1) == 0) libs = libs + 1;
            }
            go_libs[row * 19 + col] = libs;
            total = total + libs;
        }
    }
    return total;
}

int go_territory() {
    int i;
    int score = 0;
    for (i = 0; i < 361; i = i + 1) {
        if (go_board[i] == 0) {
            if (go_infl[i] > 2) score = score + 1;
            if (go_infl[i] < -2) score = score - 1;
        }
    }
    return score;
}

int go_atari_count() {
    int i;
    int n = 0;
    for (i = 0; i < 361; i = i + 1)
        if (go_board[i] != 0 && go_libs[i] == 1) n = n + 1;
    return n;
}

int go_play_move(int pos, int color) {
    if (pos >= 0 && pos < 361) {
        if (go_board[pos] == 0) {
            go_board[pos] = color;
            return 1;
        }
    }
    return 0;
}

int go_evaluate() {
    int v = go_influence();
    int l = go_liberties();
    int t = go_territory();
    int a = go_atari_count();
    return v + l * 2 + t * 16 - a * 3;
}
)";
    src += filler.definitions;
    src += R"(
int main() {
    int acc = 1;
    int gob_it;
    int move;
    go_setup(777);
    for (move = 0; move < 12; move = move + 1) {
        go_play_move((move * 97 + 31) % 361, 1 + (move & 1));
        acc = rt_checksum(acc, go_evaluate());
    }
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
