#include "workloads/generator.hh"

#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace codecomp::workloads {

namespace {

using codecomp::Rng;

/** Random arithmetic expression over @p vars, nesting at most @p depth. */
std::string
randExpr(Rng &rng, const std::vector<std::string> &vars, int depth)
{
    if (depth <= 0 || rng.chance(1, 4)) {
        if (rng.chance(2, 5))
            return std::to_string(rng.range(-64, 255));
        return vars[rng.below(vars.size())];
    }
    std::string lhs = randExpr(rng, vars, depth - 1);
    switch (rng.below(9)) {
      case 0:
        return "(" + lhs + " + " + randExpr(rng, vars, depth - 1) + ")";
      case 1:
        return "(" + lhs + " - " + randExpr(rng, vars, depth - 1) + ")";
      case 2:
        return "(" + lhs + " * " + std::to_string(rng.range(2, 13)) + ")";
      case 3:
        return "(" + lhs + " & " + std::to_string(rng.range(1, 1023)) + ")";
      case 4:
        return "(" + lhs + " | " + randExpr(rng, vars, depth - 1) + ")";
      case 5:
        return "(" + lhs + " ^ " + randExpr(rng, vars, depth - 1) + ")";
      case 6:
        return "(" + lhs + " << " + std::to_string(rng.range(1, 4)) + ")";
      case 7:
        return "(" + lhs + " >> " + std::to_string(rng.range(1, 4)) + ")";
      default:
        return "(" + lhs + " / " + std::to_string(rng.range(2, 9)) + ")";
    }
}

/** Argument list of @p arity expressions over @p vars. */
std::string
randArgs(Rng &rng, const std::vector<std::string> &vars, int arity)
{
    std::string out = "(";
    for (int i = 0; i < arity; ++i) {
        if (i)
            out += ", ";
        out += randExpr(rng, vars, 1);
    }
    return out + ")";
}

} // namespace

FillerCode
generateFiller(const GenSpec &spec, const std::string &prefix, int iters)
{
    CC_ASSERT(spec.loopTrip <= spec.arraySize, "loop trip exceeds array");
    Rng rng(spec.seed);
    FillerCode out;
    std::string &src = out.definitions;

    auto arr = [&prefix](int k) {
        return prefix + "_arr" + std::to_string(k);
    };
    auto leaf = [&prefix](int j) {
        return prefix + "_leaf" + std::to_string(j);
    };
    auto mid = [&prefix](int j) {
        return prefix + "_mid" + std::to_string(j);
    };
    auto dispatch = [&prefix](int j) {
        return prefix + "_dsp" + std::to_string(j);
    };

    // Global work arrays and a few scalars.
    for (int k = 0; k < spec.arrays; ++k)
        src += "int " + arr(k) + "[" + std::to_string(spec.arraySize) +
               "];\n";
    src += "int " + prefix + "_g0 = 17;\n";
    src += "int " + prefix + "_g1 = 29;\n";

    // Leaf functions: straight-line arithmetic with varied arity and
    // varied local counts (so register assignment and frame shapes
    // differ across the pool, as they do in real compiled code).
    std::vector<int> leaf_arity(spec.leafFuncs);
    for (int j = 0; j < spec.leafFuncs; ++j) {
        int arity = 1 + static_cast<int>(rng.below(3));
        leaf_arity[j] = arity;
        std::vector<std::string> vars;
        src += "int " + leaf(j) + "(";
        for (int a = 0; a < arity; ++a) {
            std::string p(1, static_cast<char>('a' + a));
            if (a)
                src += ", ";
            src += "int " + p;
            vars.push_back(p);
        }
        src += ") {\n";
        int locals = 1 + static_cast<int>(rng.below(4));
        for (int v = 0; v < locals; ++v) {
            std::string name = "t" + std::to_string(v);
            src += "    int " + name + " = " +
                   randExpr(rng, vars, spec.exprDepth - 1) + ";\n";
            vars.push_back(name);
        }
        for (int stmt = 0; stmt < spec.stmtsPerLeaf; ++stmt) {
            const std::string &dst =
                vars[arity + rng.below(vars.size() - arity)];
            src += "    " + dst + " = " +
                   randExpr(rng, vars, spec.exprDepth) + ";\n";
        }
        src += "    return " + randExpr(rng, vars, 1) + ";\n}\n";
    }

    // Mid functions: loop over an array, mixing stores, loads, leaf
    // calls, and guarded updates. A random prefix of extra locals (and
    // an occasional scratch array) varies frames and register homes.
    for (int j = 0; j < spec.midFuncs; ++j) {
        int a0 = static_cast<int>(rng.below(spec.arrays));
        int a1 = static_cast<int>(rng.below(spec.arrays));
        src += "int " + mid(j) + "(int n) {\n";
        std::vector<std::string> vars = {"n"};
        int extras = static_cast<int>(rng.below(4));
        for (int e = 0; e < extras; ++e) {
            std::string name = "u" + std::to_string(e);
            src += "    int " + name + " = " +
                   std::to_string(rng.range(-9, 99)) + ";\n";
            vars.push_back(name);
        }
        bool has_buf = rng.chance(1, 4);
        int buf_len = 4 + static_cast<int>(rng.below(12));
        if (has_buf)
            src += "    int buf[" + std::to_string(buf_len) + "];\n";
        src += "    int i;\n    int acc = " +
               std::to_string(rng.range(1, 97)) + ";\n";
        vars.push_back("i");
        vars.push_back("acc");
        src += "    for (i = 0; i < " + std::to_string(spec.loopTrip) +
               "; i = i + 1) {\n";
        src += "        " + arr(a0) + "[i] = " +
               randExpr(rng, vars, spec.exprDepth - 1) + ";\n";
        if (has_buf)
            src += "        buf[i % " + std::to_string(buf_len) +
                   "] = acc;\n";
        for (int stmt = 0; stmt < spec.stmtsPerMid; ++stmt) {
            switch (rng.below(5)) {
              case 0:
                src += "        acc = acc + " + arr(a1) + "[i];\n";
                break;
              case 1:
                if (spec.leafFuncs > 0) {
                    int target =
                        static_cast<int>(rng.below(spec.leafFuncs));
                    src += "        acc = acc + " + leaf(target) +
                           randArgs(rng, vars, leaf_arity[target]) + ";\n";
                    break;
                }
                [[fallthrough]];
              case 2:
                src += "        if (acc > " +
                       std::to_string(rng.range(512, 4096)) +
                       ") acc = acc - " +
                       std::to_string(rng.range(100, 999)) + ";\n";
                break;
              case 3:
                if (!vars.empty()) {
                    const std::string &dst = vars[rng.below(vars.size())];
                    if (dst != "i" && dst != "n") {
                        src += "        " + dst + " = " +
                               randExpr(rng, vars, spec.exprDepth) + ";\n";
                        break;
                    }
                }
                [[fallthrough]];
              default:
                src += "        acc = " +
                       randExpr(rng, vars, spec.exprDepth) + ";\n";
                break;
            }
        }
        src += "    }\n";
        if (has_buf)
            src += "    acc = acc + buf[" +
                   std::to_string(rng.below(buf_len)) + "];\n";
        src += "    " + prefix + "_g0 = " + prefix + "_g0 + acc;\n";
        src += "    return acc + " + prefix + "_g1;\n}\n";
    }

    // Dispatchers: dense switches over the mid pool.
    for (int j = 0; j < spec.dispatchFuncs; ++j) {
        src += "int " + dispatch(j) + "(int sel, int n) {\n";
        src += "    switch (sel) {\n";
        for (int c = 0; c < spec.switchCases; ++c) {
            int target = spec.midFuncs > 0
                             ? static_cast<int>(rng.below(spec.midFuncs))
                             : -1;
            src += "      case " + std::to_string(c) + ": return ";
            if (target >= 0)
                src += mid(target) + "(n + " + std::to_string(c) + ");\n";
            else
                src += "n + " + std::to_string(c * 3 + 1) + ";\n";
        }
        src += "      default: return n;\n    }\n}\n";
    }

    // Statements for main().
    std::string it = prefix + "_it";
    out.mainStmts += "    for (" + it + " = 0; " + it + " < " +
                     std::to_string(iters) + "; " + it + " = " + it +
                     " + 1) {\n";
    for (int j = 0; j < spec.dispatchFuncs; ++j)
        out.mainStmts += "        acc = rt_checksum(acc, " + dispatch(j) +
                         "(" + it + " % " +
                         std::to_string(spec.switchCases) + ", " + it +
                         "));\n";
    out.mainStmts += "    }\n";
    return out;
}

std::string
bigLoopFunction(const std::string &name, int stmts, uint64_t seed)
{
    Rng rng(seed);
    std::string src = "int " + name + "(int n) {\n";
    src += "    int x = n;\n    int y = 7;\n    int z = 13;\n";
    src += "    int i = 0;\n";
    src += "    while (i < 2) {\n";
    for (int stmt = 0; stmt < stmts; ++stmt) {
        switch (rng.below(5)) {
          case 0:
            src += "        x = x * " + std::to_string(rng.range(3, 31)) +
                   " + " + std::to_string(rng.range(1, 255)) + ";\n";
            break;
          case 1:
            src += "        y = y ^ (x >> " +
                   std::to_string(rng.range(1, 7)) + ");\n";
            break;
          case 2:
            src += "        z = (z + y) & " +
                   std::to_string(rng.range(255, 16383)) + ";\n";
            break;
          case 3:
            src += "        x = x - (z | " +
                   std::to_string(rng.range(1, 127)) + ");\n";
            break;
          default:
            src += "        y = y + x + z;\n";
            break;
        }
    }
    src += "        i = i + 1;\n    }\n";
    src += "    return x + y + z;\n}\n";
    return src;
}

} // namespace codecomp::workloads
