/**
 * @file
 * `vortex` substitute: an object-store / in-memory database with
 * hash-chained records, field accessors, and transaction loops --
 * echoing SPEC 147.vortex's many small manipulation routines.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

namespace {

/** Generate get/set accessor pairs for one record field array. */
std::string
accessors(const std::string &field)
{
    std::string src;
    src += "int vx_get_" + field + "(int rec) { return vx_" + field +
           "[rec]; }\n";
    src += "int vx_set_" + field + "(int rec, int v) { vx_" + field +
           "[rec] = v; return v; }\n";
    return src;
}

} // namespace

std::string
sourceVortex(int scale)
{
    GenSpec spec;
    spec.seed = 0x0e7e01;
    spec.leafFuncs = 45 * scale;
    spec.midFuncs = 60 * scale;
    spec.dispatchFuncs = 3;
    spec.switchCases = 14;
    spec.arrays = 4;
    spec.arraySize = 80;
    spec.loopTrip = 24;
    FillerCode filler = generateFiller(spec, "vxf", 10);

    std::string src = R"(
// ---- object-store core ----
int vx_id[512];
int vx_score[512];
int vx_flags[512];
int vx_parent[512];
int vx_next[512];
int vx_bucket[64];
int vx_count = 0;
)";
    for (const char *field : {"id", "score", "flags", "parent"})
        src += accessors(field);
    src += R"(
int vx_hash_id(int id) { return (id * 2654435 + 7) & 63; }

int vx_reset() {
    int i;
    for (i = 0; i < 64; i = i + 1) vx_bucket[i] = -1;
    vx_count = 0;
    return 0;
}

int vx_insert(int id, int score, int parent) {
    int rec = vx_count;
    if (rec >= 512) return -1;
    vx_count = vx_count + 1;
    vx_set_id(rec, id);
    vx_set_score(rec, score);
    vx_set_flags(rec, 0);
    vx_set_parent(rec, parent);
    int b = vx_hash_id(id);
    vx_next[rec] = vx_bucket[b];
    vx_bucket[b] = rec;
    return rec;
}

int vx_lookup(int id) {
    int rec = vx_bucket[vx_hash_id(id)];
    int steps = 0;
    while (rec != -1 && steps < 512) {
        if (vx_get_id(rec) == id) return rec;
        rec = vx_next[rec];
        steps = steps + 1;
    }
    return -1;
}

int vx_update_score(int id, int delta) {
    int rec = vx_lookup(id);
    if (rec == -1) return 0;
    vx_set_score(rec, vx_get_score(rec) + delta);
    vx_set_flags(rec, vx_get_flags(rec) | 1);
    return 1;
}

int vx_chain_depth(int rec) {
    int depth = 0;
    while (rec != -1 && depth < 64) {
        rec = vx_get_parent(rec);
        depth = depth + 1;
    }
    return depth;
}

int vx_scan_total() {
    int i;
    int total = 0;
    for (i = 0; i < vx_count; i = i + 1) {
        total = total + vx_get_score(i);
        if (vx_get_flags(i) & 1) total = total + 1;
    }
    return total;
}

int vx_transaction(int seed) {
    int i;
    int hits = 0;
    rt_srand(seed);
    for (i = 0; i < 200; i = i + 1) {
        int id = rt_rand() & 1023;
        int kind = rt_rand() % 3;
        if (kind == 0) {
            vx_insert(id, rt_rand() & 255, (vx_count > 0)
                          * (rt_rand() % (vx_count + 1)) - 1);
        } else if (kind == 1) {
            hits = hits + vx_update_score(id, (rt_rand() & 31) - 16);
        } else {
            int rec = vx_lookup(id);
            if (rec != -1) hits = hits + vx_chain_depth(rec);
        }
    }
    return hits;
}
)";
    src += filler.definitions;
    src += bigLoopFunction("vxx_big0", 620, 0x0e7e10);
    src += R"(
int main() {
    int acc = 1;
    int vxf_it;
    int round;
    vx_reset();
    for (round = 0; round < 4; round = round + 1) {
        acc = rt_checksum(acc, vx_transaction(4000 + round * 11));
        acc = rt_checksum(acc, vx_scan_total());
        acc = rt_checksum(acc, vx_count);
    }
    acc = rt_checksum(acc, vxx_big0(acc));
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
