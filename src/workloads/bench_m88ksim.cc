/**
 * @file
 * `m88ksim` substitute: a fetch/decode/dispatch CPU simulator with a
 * register file, ALU switch, and tight interpreter loop -- the shape of
 * SPEC 124.m88ksim.
 */

#include "workloads/generator.hh"
#include "workloads/workloads.hh"

namespace codecomp::workloads {

std::string
sourceM88ksim(int scale)
{
    GenSpec spec;
    spec.seed = 0x88001;
    spec.leafFuncs = 30 * scale;
    spec.midFuncs = 38 * scale;
    spec.dispatchFuncs = 2;
    spec.switchCases = 12;
    spec.arrays = 3;
    spec.arraySize = 64;
    spec.loopTrip = 24;
    FillerCode filler = generateFiller(spec, "m8f", 10);

    std::string src = R"(
// ---- simulated-CPU core ----
// Simulated insn word: op(4) | rd(4) | rs1(4) | rs2(4) | imm(16)
int m8_imem[1024];
int m8_regs[16];
int m8_dmem[256];
int m8_pc = 0;
int m8_cycles = 0;
int m8_taken = 0;

int m8_load_program(int n, int seed) {
    int i;
    rt_srand(seed);
    for (i = 0; i < n; i = i + 1) {
        int op = rt_rand() % 12;
        int rd = rt_rand() & 15;
        int rs1 = rt_rand() & 15;
        int rs2 = rt_rand() & 15;
        int imm = rt_rand() & 255;
        m8_imem[i] = (op << 28) | (rd << 24) | (rs1 << 20) | (rs2 << 16)
                     | imm;
    }
    return n;
}

int m8_reset() {
    int i;
    for (i = 0; i < 16; i = i + 1) m8_regs[i] = i * 3 + 1;
    for (i = 0; i < 256; i = i + 1) m8_dmem[i] = i ^ 42;
    m8_pc = 0;
    m8_cycles = 0;
    m8_taken = 0;
    return 0;
}

int m8_step() {
    int insn = m8_imem[m8_pc];
    int op = (insn >> 28) & 15;
    int rd = (insn >> 24) & 15;
    int rs1 = (insn >> 20) & 15;
    int rs2 = (insn >> 16) & 15;
    int imm = insn & 0xffff;
    int next = m8_pc + 1;
    switch (op) {
      case 0: m8_regs[rd] = m8_regs[rs1] + m8_regs[rs2]; break;
      case 1: m8_regs[rd] = m8_regs[rs1] - m8_regs[rs2]; break;
      case 2: m8_regs[rd] = m8_regs[rs1] & m8_regs[rs2]; break;
      case 3: m8_regs[rd] = m8_regs[rs1] | m8_regs[rs2]; break;
      case 4: m8_regs[rd] = m8_regs[rs1] ^ imm; break;
      case 5: m8_regs[rd] = m8_regs[rs1] + imm; break;
      case 6: m8_regs[rd] = (m8_regs[rs1] & 65535) * (imm & 255); break;
      case 7: m8_regs[rd] = m8_dmem[m8_regs[rs1] & 255]; break;
      case 8: m8_dmem[m8_regs[rs1] & 255] = m8_regs[rs2]; break;
      case 9:
        if (m8_regs[rs1] > m8_regs[rs2]) {
            next = imm & 1023;
            m8_taken = m8_taken + 1;
        }
        break;
      case 10: m8_regs[rd] = m8_regs[rs1] << (imm & 15); break;
      default: m8_regs[rd] = m8_regs[rs1] >> (imm & 15); break;
    }
    m8_regs[0] = 0;
    m8_pc = next;
    if (m8_pc >= 1024) m8_pc = 0;
    m8_cycles = m8_cycles + 1;
    return op;
}

int m8_run(int cycles) {
    int i;
    int acc = 0;
    for (i = 0; i < cycles; i = i + 1)
        acc = acc + m8_step();
    return acc;
}

int m8_regs_checksum() {
    int i;
    int acc = 3;
    for (i = 0; i < 16; i = i + 1)
        acc = rt_checksum(acc, m8_regs[i]);
    return acc;
}
)";
    src += filler.definitions;
    src += R"(
int main() {
    int acc = 1;
    int m8f_it;
    m8_load_program(1024, 8888);
    m8_reset();
    acc = rt_checksum(acc, m8_run(20000));
    acc = rt_checksum(acc, m8_regs_checksum());
    puti(m8_taken);
)";
    src += filler.mainStmts;
    src += R"(
    puti(acc);
    return 0;
}
)";
    return src;
}

} // namespace codecomp::workloads
