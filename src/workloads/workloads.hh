/**
 * @file
 * The synthetic SPEC CINT95 substitute suite.
 *
 * Eight deterministic MiniC programs named after the CINT95 benchmarks
 * the paper measures. Each pairs a hand-written algorithmic core that
 * echoes its namesake's behaviour (LZW coding for compress, a CPU
 * decode-dispatch loop for m88ksim, a cons-cell interpreter for li, ...)
 * with generated filler code that gives it a SPEC-like static size and
 * redundancy profile. See DESIGN.md section 2 for the substitution
 * rationale.
 */

#ifndef CODECOMP_WORKLOADS_WORKLOADS_HH
#define CODECOMP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "program/program.hh"

namespace codecomp::workloads {

/** The benchmark names, in the paper's order. */
const std::vector<std::string> &benchmarkNames();

/**
 * MiniC source for benchmark @p name. @p scale multiplies the filler
 * pools (1 = default size, matching CINT95's *relative* sizes).
 */
std::string benchmarkSource(const std::string &name, int scale = 1);

/** Compile benchmark @p name (with the runtime library linked). */
Program buildBenchmark(const std::string &name, int scale = 1);

/** @{ Individual source generators (one per CINT95 program). */
std::string sourceCompress(int scale);
std::string sourceGcc(int scale);
std::string sourceGo(int scale);
std::string sourceIjpeg(int scale);
std::string sourceLi(int scale);
std::string sourceM88ksim(int scale);
std::string sourcePerl(int scale);
std::string sourceVortex(int scale);
/** @} */

} // namespace codecomp::workloads

#endif // CODECOMP_WORKLOADS_WORKLOADS_HH
