# Empty compiler generated dependencies file for disasm_tool.
# This may be replaced when dependencies are built.
