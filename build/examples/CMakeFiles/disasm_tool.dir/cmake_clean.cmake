file(REMOVE_RECURSE
  "CMakeFiles/disasm_tool.dir/disasm_tool.cpp.o"
  "CMakeFiles/disasm_tool.dir/disasm_tool.cpp.o.d"
  "disasm_tool"
  "disasm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disasm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
