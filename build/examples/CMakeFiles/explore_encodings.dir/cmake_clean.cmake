file(REMOVE_RECURSE
  "CMakeFiles/explore_encodings.dir/explore_encodings.cpp.o"
  "CMakeFiles/explore_encodings.dir/explore_encodings.cpp.o.d"
  "explore_encodings"
  "explore_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
