# Empty compiler generated dependencies file for explore_encodings.
# This may be replaced when dependencies are built.
