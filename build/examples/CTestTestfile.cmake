# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedded_firmware "/root/repo/build/examples/embedded_firmware")
set_tests_properties(example_embedded_firmware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_explore_encodings "/root/repo/build/examples/explore_encodings" "compress" "4")
set_tests_properties(example_explore_encodings PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_disasm_tool "/root/repo/build/examples/disasm_tool" "li" "rt_gcd")
set_tests_properties(example_disasm_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
