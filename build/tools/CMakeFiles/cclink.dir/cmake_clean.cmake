file(REMOVE_RECURSE
  "CMakeFiles/cclink.dir/cclink_main.cc.o"
  "CMakeFiles/cclink.dir/cclink_main.cc.o.d"
  "cclink"
  "cclink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cclink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
