# Empty compiler generated dependencies file for cclink.
# This may be replaced when dependencies are built.
