file(REMOVE_RECURSE
  "CMakeFiles/minicc.dir/minicc_main.cc.o"
  "CMakeFiles/minicc.dir/minicc_main.cc.o.d"
  "minicc"
  "minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
