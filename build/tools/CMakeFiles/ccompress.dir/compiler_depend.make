# Empty compiler generated dependencies file for ccompress.
# This may be replaced when dependencies are built.
