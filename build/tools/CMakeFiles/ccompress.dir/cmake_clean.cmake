file(REMOVE_RECURSE
  "CMakeFiles/ccompress.dir/ccompress_main.cc.o"
  "CMakeFiles/ccompress.dir/ccompress_main.cc.o.d"
  "ccompress"
  "ccompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
