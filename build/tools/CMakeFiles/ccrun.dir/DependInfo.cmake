
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ccrun_main.cc" "tools/CMakeFiles/ccrun.dir/ccrun_main.cc.o" "gcc" "tools/CMakeFiles/ccrun.dir/ccrun_main.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/cc_link.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/decompress/CMakeFiles/cc_decompress.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/cc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
