file(REMOVE_RECURSE
  "CMakeFiles/ccrun.dir/ccrun_main.cc.o"
  "CMakeFiles/ccrun.dir/ccrun_main.cc.o.d"
  "ccrun"
  "ccrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
