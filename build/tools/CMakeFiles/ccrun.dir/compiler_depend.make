# Empty compiler generated dependencies file for ccrun.
# This may be replaced when dependencies are built.
