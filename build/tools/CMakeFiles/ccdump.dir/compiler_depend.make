# Empty compiler generated dependencies file for ccdump.
# This may be replaced when dependencies are built.
