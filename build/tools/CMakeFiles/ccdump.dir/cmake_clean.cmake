file(REMOVE_RECURSE
  "CMakeFiles/ccdump.dir/ccdump_main.cc.o"
  "CMakeFiles/ccdump.dir/ccdump_main.cc.o.d"
  "ccdump"
  "ccdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
