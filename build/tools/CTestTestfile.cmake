# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_minicc_c_module_a "/root/repo/build/tools/minicc" "-c" "/root/repo/tools/testdata/modmath.mc" "-o" "/root/repo/build/tools/modmath.cco")
set_tests_properties(tool_minicc_c_module_a PROPERTIES  FIXTURES_SETUP "e2e_cco" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_minicc_c_module_b "/root/repo/build/tools/minicc" "-c" "/root/repo/tools/testdata/modapp.mc" "-o" "/root/repo/build/tools/modapp.cco")
set_tests_properties(tool_minicc_c_module_b PROPERTIES  FIXTURES_SETUP "e2e_cco" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_cclink "/root/repo/build/tools/cclink" "/root/repo/build/tools/modapp.cco" "/root/repo/build/tools/modmath.cco" "-o" "/root/repo/build/tools/mod.ccp")
set_tests_properties(tool_cclink PROPERTIES  FIXTURES_REQUIRED "e2e_cco" FIXTURES_SETUP "e2e_linked" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccrun_linked "/root/repo/build/tools/ccrun" "/root/repo/build/tools/mod.ccp" "--stats")
set_tests_properties(tool_ccrun_linked PROPERTIES  FIXTURES_REQUIRED "e2e_linked" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_minicc_benchmark "/root/repo/build/tools/minicc" "--benchmark" "compress" "-o" "/root/repo/build/tools/e2e.ccp")
set_tests_properties(tool_minicc_benchmark PROPERTIES  FIXTURES_SETUP "e2e_ccp" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccompress "/root/repo/build/tools/ccompress" "/root/repo/build/tools/e2e.ccp" "-o" "/root/repo/build/tools/e2e.cci" "--scheme" "nibble" "--stats")
set_tests_properties(tool_ccompress PROPERTIES  FIXTURES_REQUIRED "e2e_ccp" FIXTURES_SETUP "e2e_cci" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;47;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccrun_plain "/root/repo/build/tools/ccrun" "/root/repo/build/tools/e2e.ccp" "--stats")
set_tests_properties(tool_ccrun_plain PROPERTIES  FIXTURES_REQUIRED "e2e_ccp" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;54;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccrun_compressed "/root/repo/build/tools/ccrun" "/root/repo/build/tools/e2e.cci" "--stats")
set_tests_properties(tool_ccrun_compressed PROPERTIES  FIXTURES_REQUIRED "e2e_cci" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;59;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccdump_program "/root/repo/build/tools/ccdump" "/root/repo/build/tools/e2e.ccp")
set_tests_properties(tool_ccdump_program PROPERTIES  FIXTURES_REQUIRED "e2e_ccp" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;64;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_ccdump_image "/root/repo/build/tools/ccdump" "/root/repo/build/tools/e2e.cci" "--stream" "20")
set_tests_properties(tool_ccdump_image PROPERTIES  FIXTURES_REQUIRED "e2e_cci" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;69;add_test;/root/repo/tools/CMakeLists.txt;0;")
