file(REMOVE_RECURSE
  "CMakeFiles/ext_icache.dir/ext_icache.cc.o"
  "CMakeFiles/ext_icache.dir/ext_icache.cc.o.d"
  "ext_icache"
  "ext_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
