# Empty compiler generated dependencies file for ext_icache.
# This may be replaced when dependencies are built.
