file(REMOVE_RECURSE
  "CMakeFiles/fig11_nibble_vs_compress.dir/fig11_nibble_vs_compress.cc.o"
  "CMakeFiles/fig11_nibble_vs_compress.dir/fig11_nibble_vs_compress.cc.o.d"
  "fig11_nibble_vs_compress"
  "fig11_nibble_vs_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nibble_vs_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
