# Empty compiler generated dependencies file for fig11_nibble_vs_compress.
# This may be replaced when dependencies are built.
