# Empty dependencies file for table1_branch_offsets.
# This may be replaced when dependencies are built.
