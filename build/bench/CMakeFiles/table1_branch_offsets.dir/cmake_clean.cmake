file(REMOVE_RECURSE
  "CMakeFiles/table1_branch_offsets.dir/table1_branch_offsets.cc.o"
  "CMakeFiles/table1_branch_offsets.dir/table1_branch_offsets.cc.o.d"
  "table1_branch_offsets"
  "table1_branch_offsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_branch_offsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
