file(REMOVE_RECURSE
  "CMakeFiles/table2_max_codewords.dir/table2_max_codewords.cc.o"
  "CMakeFiles/table2_max_codewords.dir/table2_max_codewords.cc.o.d"
  "table2_max_codewords"
  "table2_max_codewords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_max_codewords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
