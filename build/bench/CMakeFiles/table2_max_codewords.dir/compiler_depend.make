# Empty compiler generated dependencies file for table2_max_codewords.
# This may be replaced when dependencies are built.
