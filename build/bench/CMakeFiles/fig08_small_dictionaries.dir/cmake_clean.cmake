file(REMOVE_RECURSE
  "CMakeFiles/fig08_small_dictionaries.dir/fig08_small_dictionaries.cc.o"
  "CMakeFiles/fig08_small_dictionaries.dir/fig08_small_dictionaries.cc.o.d"
  "fig08_small_dictionaries"
  "fig08_small_dictionaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_small_dictionaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
