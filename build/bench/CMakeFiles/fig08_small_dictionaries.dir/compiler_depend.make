# Empty compiler generated dependencies file for fig08_small_dictionaries.
# This may be replaced when dependencies are built.
