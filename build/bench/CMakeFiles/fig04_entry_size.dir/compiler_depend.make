# Empty compiler generated dependencies file for fig04_entry_size.
# This may be replaced when dependencies are built.
