file(REMOVE_RECURSE
  "CMakeFiles/fig04_entry_size.dir/fig04_entry_size.cc.o"
  "CMakeFiles/fig04_entry_size.dir/fig04_entry_size.cc.o.d"
  "fig04_entry_size"
  "fig04_entry_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_entry_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
