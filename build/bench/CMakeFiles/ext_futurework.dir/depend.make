# Empty dependencies file for ext_futurework.
# This may be replaced when dependencies are built.
