file(REMOVE_RECURSE
  "CMakeFiles/ext_futurework.dir/ext_futurework.cc.o"
  "CMakeFiles/ext_futurework.dir/ext_futurework.cc.o.d"
  "ext_futurework"
  "ext_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
