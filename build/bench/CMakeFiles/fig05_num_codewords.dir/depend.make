# Empty dependencies file for fig05_num_codewords.
# This may be replaced when dependencies are built.
