file(REMOVE_RECURSE
  "CMakeFiles/fig05_num_codewords.dir/fig05_num_codewords.cc.o"
  "CMakeFiles/fig05_num_codewords.dir/fig05_num_codewords.cc.o.d"
  "fig05_num_codewords"
  "fig05_num_codewords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_num_codewords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
