file(REMOVE_RECURSE
  "CMakeFiles/fig09_composition.dir/fig09_composition.cc.o"
  "CMakeFiles/fig09_composition.dir/fig09_composition.cc.o.d"
  "fig09_composition"
  "fig09_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
