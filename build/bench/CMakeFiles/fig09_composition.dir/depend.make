# Empty dependencies file for fig09_composition.
# This may be replaced when dependencies are built.
