file(REMOVE_RECURSE
  "CMakeFiles/ext_profile.dir/ext_profile.cc.o"
  "CMakeFiles/ext_profile.dir/ext_profile.cc.o.d"
  "ext_profile"
  "ext_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
