# Empty compiler generated dependencies file for ext_profile.
# This may be replaced when dependencies are built.
