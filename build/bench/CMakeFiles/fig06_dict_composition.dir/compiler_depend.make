# Empty compiler generated dependencies file for fig06_dict_composition.
# This may be replaced when dependencies are built.
