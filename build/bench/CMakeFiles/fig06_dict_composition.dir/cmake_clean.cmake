file(REMOVE_RECURSE
  "CMakeFiles/fig06_dict_composition.dir/fig06_dict_composition.cc.o"
  "CMakeFiles/fig06_dict_composition.dir/fig06_dict_composition.cc.o.d"
  "fig06_dict_composition"
  "fig06_dict_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_dict_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
