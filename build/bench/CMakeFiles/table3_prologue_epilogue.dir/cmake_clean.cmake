file(REMOVE_RECURSE
  "CMakeFiles/table3_prologue_epilogue.dir/table3_prologue_epilogue.cc.o"
  "CMakeFiles/table3_prologue_epilogue.dir/table3_prologue_epilogue.cc.o.d"
  "table3_prologue_epilogue"
  "table3_prologue_epilogue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prologue_epilogue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
