# Empty dependencies file for table3_prologue_epilogue.
# This may be replaced when dependencies are built.
