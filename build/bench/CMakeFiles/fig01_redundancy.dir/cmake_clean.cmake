file(REMOVE_RECURSE
  "CMakeFiles/fig01_redundancy.dir/fig01_redundancy.cc.o"
  "CMakeFiles/fig01_redundancy.dir/fig01_redundancy.cc.o.d"
  "fig01_redundancy"
  "fig01_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
