# Empty compiler generated dependencies file for fig01_redundancy.
# This may be replaced when dependencies are built.
