# Empty dependencies file for fig07_savings_by_length.
# This may be replaced when dependencies are built.
