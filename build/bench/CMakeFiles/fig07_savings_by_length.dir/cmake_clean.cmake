file(REMOVE_RECURSE
  "CMakeFiles/fig07_savings_by_length.dir/fig07_savings_by_length.cc.o"
  "CMakeFiles/fig07_savings_by_length.dir/fig07_savings_by_length.cc.o.d"
  "fig07_savings_by_length"
  "fig07_savings_by_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_savings_by_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
