file(REMOVE_RECURSE
  "CMakeFiles/fig10_nibble_encoding.dir/fig10_nibble_encoding.cc.o"
  "CMakeFiles/fig10_nibble_encoding.dir/fig10_nibble_encoding.cc.o.d"
  "fig10_nibble_encoding"
  "fig10_nibble_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nibble_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
