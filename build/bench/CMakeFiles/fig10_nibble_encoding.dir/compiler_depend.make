# Empty compiler generated dependencies file for fig10_nibble_encoding.
# This may be replaced when dependencies are built.
