file(REMOVE_RECURSE
  "libcc_decompress.a"
)
