file(REMOVE_RECURSE
  "CMakeFiles/cc_decompress.dir/compressed_cpu.cc.o"
  "CMakeFiles/cc_decompress.dir/compressed_cpu.cc.o.d"
  "CMakeFiles/cc_decompress.dir/cpu.cc.o"
  "CMakeFiles/cc_decompress.dir/cpu.cc.o.d"
  "CMakeFiles/cc_decompress.dir/engine.cc.o"
  "CMakeFiles/cc_decompress.dir/engine.cc.o.d"
  "CMakeFiles/cc_decompress.dir/machine.cc.o"
  "CMakeFiles/cc_decompress.dir/machine.cc.o.d"
  "libcc_decompress.a"
  "libcc_decompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_decompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
