
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decompress/compressed_cpu.cc" "src/decompress/CMakeFiles/cc_decompress.dir/compressed_cpu.cc.o" "gcc" "src/decompress/CMakeFiles/cc_decompress.dir/compressed_cpu.cc.o.d"
  "/root/repo/src/decompress/cpu.cc" "src/decompress/CMakeFiles/cc_decompress.dir/cpu.cc.o" "gcc" "src/decompress/CMakeFiles/cc_decompress.dir/cpu.cc.o.d"
  "/root/repo/src/decompress/engine.cc" "src/decompress/CMakeFiles/cc_decompress.dir/engine.cc.o" "gcc" "src/decompress/CMakeFiles/cc_decompress.dir/engine.cc.o.d"
  "/root/repo/src/decompress/machine.cc" "src/decompress/CMakeFiles/cc_decompress.dir/machine.cc.o" "gcc" "src/decompress/CMakeFiles/cc_decompress.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/cc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
