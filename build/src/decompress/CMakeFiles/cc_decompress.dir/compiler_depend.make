# Empty compiler generated dependencies file for cc_decompress.
# This may be replaced when dependencies are built.
