
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/ccrp.cc" "src/baselines/CMakeFiles/cc_baselines.dir/ccrp.cc.o" "gcc" "src/baselines/CMakeFiles/cc_baselines.dir/ccrp.cc.o.d"
  "/root/repo/src/baselines/huffman.cc" "src/baselines/CMakeFiles/cc_baselines.dir/huffman.cc.o" "gcc" "src/baselines/CMakeFiles/cc_baselines.dir/huffman.cc.o.d"
  "/root/repo/src/baselines/liao.cc" "src/baselines/CMakeFiles/cc_baselines.dir/liao.cc.o" "gcc" "src/baselines/CMakeFiles/cc_baselines.dir/liao.cc.o.d"
  "/root/repo/src/baselines/lzw.cc" "src/baselines/CMakeFiles/cc_baselines.dir/lzw.cc.o" "gcc" "src/baselines/CMakeFiles/cc_baselines.dir/lzw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/cc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
