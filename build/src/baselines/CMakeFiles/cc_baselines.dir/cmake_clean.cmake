file(REMOVE_RECURSE
  "CMakeFiles/cc_baselines.dir/ccrp.cc.o"
  "CMakeFiles/cc_baselines.dir/ccrp.cc.o.d"
  "CMakeFiles/cc_baselines.dir/huffman.cc.o"
  "CMakeFiles/cc_baselines.dir/huffman.cc.o.d"
  "CMakeFiles/cc_baselines.dir/liao.cc.o"
  "CMakeFiles/cc_baselines.dir/liao.cc.o.d"
  "CMakeFiles/cc_baselines.dir/lzw.cc.o"
  "CMakeFiles/cc_baselines.dir/lzw.cc.o.d"
  "libcc_baselines.a"
  "libcc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
