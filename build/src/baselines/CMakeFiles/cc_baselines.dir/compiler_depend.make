# Empty compiler generated dependencies file for cc_baselines.
# This may be replaced when dependencies are built.
