file(REMOVE_RECURSE
  "libcc_baselines.a"
)
