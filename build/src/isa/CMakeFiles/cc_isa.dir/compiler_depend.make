# Empty compiler generated dependencies file for cc_isa.
# This may be replaced when dependencies are built.
