file(REMOVE_RECURSE
  "CMakeFiles/cc_isa.dir/disasm.cc.o"
  "CMakeFiles/cc_isa.dir/disasm.cc.o.d"
  "CMakeFiles/cc_isa.dir/inst.cc.o"
  "CMakeFiles/cc_isa.dir/inst.cc.o.d"
  "libcc_isa.a"
  "libcc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
