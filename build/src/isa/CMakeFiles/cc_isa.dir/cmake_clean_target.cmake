file(REMOVE_RECURSE
  "libcc_isa.a"
)
