
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/candidates.cc" "src/compress/CMakeFiles/cc_compress.dir/candidates.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/candidates.cc.o.d"
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/cc_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/encoding.cc" "src/compress/CMakeFiles/cc_compress.dir/encoding.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/encoding.cc.o.d"
  "/root/repo/src/compress/greedy.cc" "src/compress/CMakeFiles/cc_compress.dir/greedy.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/greedy.cc.o.d"
  "/root/repo/src/compress/objfile.cc" "src/compress/CMakeFiles/cc_compress.dir/objfile.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/objfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
