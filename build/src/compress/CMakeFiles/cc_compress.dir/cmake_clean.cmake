file(REMOVE_RECURSE
  "CMakeFiles/cc_compress.dir/candidates.cc.o"
  "CMakeFiles/cc_compress.dir/candidates.cc.o.d"
  "CMakeFiles/cc_compress.dir/compressor.cc.o"
  "CMakeFiles/cc_compress.dir/compressor.cc.o.d"
  "CMakeFiles/cc_compress.dir/encoding.cc.o"
  "CMakeFiles/cc_compress.dir/encoding.cc.o.d"
  "CMakeFiles/cc_compress.dir/greedy.cc.o"
  "CMakeFiles/cc_compress.dir/greedy.cc.o.d"
  "CMakeFiles/cc_compress.dir/objfile.cc.o"
  "CMakeFiles/cc_compress.dir/objfile.cc.o.d"
  "libcc_compress.a"
  "libcc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
