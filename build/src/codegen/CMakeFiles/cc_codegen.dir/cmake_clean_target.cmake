file(REMOVE_RECURSE
  "libcc_codegen.a"
)
