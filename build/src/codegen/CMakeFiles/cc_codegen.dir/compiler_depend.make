# Empty compiler generated dependencies file for cc_codegen.
# This may be replaced when dependencies are built.
