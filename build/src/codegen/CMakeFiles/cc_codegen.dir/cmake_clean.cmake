file(REMOVE_RECURSE
  "CMakeFiles/cc_codegen.dir/codegen.cc.o"
  "CMakeFiles/cc_codegen.dir/codegen.cc.o.d"
  "CMakeFiles/cc_codegen.dir/lexer.cc.o"
  "CMakeFiles/cc_codegen.dir/lexer.cc.o.d"
  "CMakeFiles/cc_codegen.dir/parser.cc.o"
  "CMakeFiles/cc_codegen.dir/parser.cc.o.d"
  "CMakeFiles/cc_codegen.dir/runtime.cc.o"
  "CMakeFiles/cc_codegen.dir/runtime.cc.o.d"
  "libcc_codegen.a"
  "libcc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
