file(REMOVE_RECURSE
  "CMakeFiles/cc_analysis.dir/analysis.cc.o"
  "CMakeFiles/cc_analysis.dir/analysis.cc.o.d"
  "libcc_analysis.a"
  "libcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
