# Empty dependencies file for cc_analysis.
# This may be replaced when dependencies are built.
