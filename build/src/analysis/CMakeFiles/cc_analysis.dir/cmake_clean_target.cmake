file(REMOVE_RECURSE
  "libcc_analysis.a"
)
