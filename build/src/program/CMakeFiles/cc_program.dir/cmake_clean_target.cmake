file(REMOVE_RECURSE
  "libcc_program.a"
)
