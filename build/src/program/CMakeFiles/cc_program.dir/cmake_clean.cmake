file(REMOVE_RECURSE
  "CMakeFiles/cc_program.dir/cfg.cc.o"
  "CMakeFiles/cc_program.dir/cfg.cc.o.d"
  "CMakeFiles/cc_program.dir/program.cc.o"
  "CMakeFiles/cc_program.dir/program.cc.o.d"
  "libcc_program.a"
  "libcc_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
