# Empty dependencies file for cc_program.
# This may be replaced when dependencies are built.
