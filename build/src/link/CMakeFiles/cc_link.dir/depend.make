# Empty dependencies file for cc_link.
# This may be replaced when dependencies are built.
