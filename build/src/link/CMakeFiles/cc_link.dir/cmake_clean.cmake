file(REMOVE_RECURSE
  "CMakeFiles/cc_link.dir/linker.cc.o"
  "CMakeFiles/cc_link.dir/linker.cc.o.d"
  "CMakeFiles/cc_link.dir/object.cc.o"
  "CMakeFiles/cc_link.dir/object.cc.o.d"
  "libcc_link.a"
  "libcc_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
