file(REMOVE_RECURSE
  "libcc_link.a"
)
