file(REMOVE_RECURSE
  "CMakeFiles/cc_support.dir/logging.cc.o"
  "CMakeFiles/cc_support.dir/logging.cc.o.d"
  "CMakeFiles/cc_support.dir/serialize.cc.o"
  "CMakeFiles/cc_support.dir/serialize.cc.o.d"
  "libcc_support.a"
  "libcc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
