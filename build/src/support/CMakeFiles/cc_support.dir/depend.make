# Empty dependencies file for cc_support.
# This may be replaced when dependencies are built.
