file(REMOVE_RECURSE
  "libcc_support.a"
)
