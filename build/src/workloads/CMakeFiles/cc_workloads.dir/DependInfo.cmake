
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bench_compress.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_compress.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_compress.cc.o.d"
  "/root/repo/src/workloads/bench_gcc.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_gcc.cc.o.d"
  "/root/repo/src/workloads/bench_go.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_go.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_go.cc.o.d"
  "/root/repo/src/workloads/bench_ijpeg.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_ijpeg.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_ijpeg.cc.o.d"
  "/root/repo/src/workloads/bench_li.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_li.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_li.cc.o.d"
  "/root/repo/src/workloads/bench_m88ksim.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_m88ksim.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_m88ksim.cc.o.d"
  "/root/repo/src/workloads/bench_perl.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_perl.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_perl.cc.o.d"
  "/root/repo/src/workloads/bench_vortex.cc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_vortex.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/bench_vortex.cc.o.d"
  "/root/repo/src/workloads/generator.cc" "src/workloads/CMakeFiles/cc_workloads.dir/generator.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/generator.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/cc_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/cc_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/cc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/cc_link.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
