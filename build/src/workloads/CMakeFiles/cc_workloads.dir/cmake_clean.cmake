file(REMOVE_RECURSE
  "CMakeFiles/cc_workloads.dir/bench_compress.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_compress.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_gcc.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_gcc.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_go.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_go.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_ijpeg.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_ijpeg.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_li.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_li.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_m88ksim.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_m88ksim.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_perl.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_perl.cc.o.d"
  "CMakeFiles/cc_workloads.dir/bench_vortex.cc.o"
  "CMakeFiles/cc_workloads.dir/bench_vortex.cc.o.d"
  "CMakeFiles/cc_workloads.dir/generator.cc.o"
  "CMakeFiles/cc_workloads.dir/generator.cc.o.d"
  "CMakeFiles/cc_workloads.dir/workloads.cc.o"
  "CMakeFiles/cc_workloads.dir/workloads.cc.o.d"
  "libcc_workloads.a"
  "libcc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
