file(REMOVE_RECURSE
  "CMakeFiles/cc_cache.dir/icache.cc.o"
  "CMakeFiles/cc_cache.dir/icache.cc.o.d"
  "libcc_cache.a"
  "libcc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
