
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/cc_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_analysis_properties.cc" "tests/CMakeFiles/cc_tests.dir/test_analysis_properties.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_analysis_properties.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/cc_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/cc_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_codegen.cc" "tests/CMakeFiles/cc_tests.dir/test_codegen.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_codegen.cc.o.d"
  "/root/repo/tests/test_compress.cc" "tests/CMakeFiles/cc_tests.dir/test_compress.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_compress.cc.o.d"
  "/root/repo/tests/test_compress_properties.cc" "tests/CMakeFiles/cc_tests.dir/test_compress_properties.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_compress_properties.cc.o.d"
  "/root/repo/tests/test_disasm.cc" "tests/CMakeFiles/cc_tests.dir/test_disasm.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_disasm.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/cc_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_fuzz.cc" "tests/CMakeFiles/cc_tests.dir/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_fuzz.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/cc_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_isa_properties.cc" "tests/CMakeFiles/cc_tests.dir/test_isa_properties.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_isa_properties.cc.o.d"
  "/root/repo/tests/test_link.cc" "tests/CMakeFiles/cc_tests.dir/test_link.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_link.cc.o.d"
  "/root/repo/tests/test_machine.cc" "tests/CMakeFiles/cc_tests.dir/test_machine.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_machine.cc.o.d"
  "/root/repo/tests/test_minic_features.cc" "tests/CMakeFiles/cc_tests.dir/test_minic_features.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_minic_features.cc.o.d"
  "/root/repo/tests/test_objfile.cc" "tests/CMakeFiles/cc_tests.dir/test_objfile.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_objfile.cc.o.d"
  "/root/repo/tests/test_program.cc" "tests/CMakeFiles/cc_tests.dir/test_program.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_program.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/cc_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/cc_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/cc_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/link/CMakeFiles/cc_link.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/cc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/decompress/CMakeFiles/cc_decompress.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/cc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/cc_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
